"""Tests for the systolic performance model, area, energy, and arch models."""

import numpy as np
import pytest

from repro.accelerator import (
    ARCHS,
    GEOMETRIES,
    AcceleratorConfig,
    EnergyParams,
    LayerSpec,
    compute_density_tops_mm2,
    energy_of,
    gobo_area,
    layer_specs,
    microscopiq_area,
    noc_integration_overhead,
    olive_area,
    recon_contention,
    simulate_arch_inference,
    simulate_gemm,
    simulate_layers,
    sram_area_mm2,
    total_accelerator_area,
)


@pytest.fixture(scope="module")
def cfg():
    return AcceleratorConfig()


@pytest.fixture(scope="module")
def spec():
    return LayerSpec.synthetic("t", 4096, 4096, bit_budget=2, outlier_fraction=0.012)


class TestConfig:
    def test_bandwidth_conversion(self, cfg):
        assert cfg.dram_bits_per_cycle == pytest.approx(2048.0)
        assert cfg.sram_bits_per_cycle == pytest.approx(512.0)

    def test_recon_stages(self, cfg):
        assert cfg.recon_stages == 7  # log2(64)+1

    def test_rejects_non_pow2_cols(self):
        with pytest.raises(ValueError):
            AcceleratorConfig(cols=60)


class TestLayerSpec:
    def test_weight_bits_uses_ebw(self, spec):
        assert spec.weight_bits == pytest.approx(spec.ebw * 4096 * 4096)

    def test_outlier_rows_clustering(self, spec):
        k = spec.outlier_rows_in_tile(64, 128)
        # clustered: far fewer rows than the naive per-row expectation
        assert 1 <= k <= 8

    def test_from_packed(self, packed_w2):
        s = LayerSpec.from_packed("l", packed_w2)
        assert s.ebw == pytest.approx(packed_w2.ebw())
        assert s.outlier_ub_fraction == pytest.approx(packed_w2.outlier_ub_fraction())

    def test_rejects_bad_fraction(self):
        with pytest.raises(ValueError):
            LayerSpec("x", 8, 8, 2, 2.0, 1.5)


class TestContention:
    def test_no_requests(self):
        assert recon_contention(np.zeros(4, dtype=np.int64), 1) == (0, 0, 0)

    def test_single_stream_no_conflicts(self):
        arrivals = np.zeros(20, dtype=np.int64)
        arrivals[3:13] = 1
        total, delayed, extra = recon_contention(arrivals, 1)
        assert total == 10 and delayed == 0 and extra == 0

    def test_oversubscription_delays(self):
        arrivals = np.full(10, 2, dtype=np.int64)
        total, delayed, extra = recon_contention(arrivals, 1)
        assert total == 20 and delayed > 0 and extra > 0

    def test_more_units_fewer_conflicts(self):
        arrivals = np.full(10, 3, dtype=np.int64)
        d1 = recon_contention(arrivals, 1)[1]
        d2 = recon_contention(arrivals, 2)[1]
        d4 = recon_contention(arrivals, 4)[1]
        assert d1 >= d2 >= d4


class TestSimulateGemm:
    def test_decode_is_memory_bound(self, spec, cfg):
        st = simulate_gemm(spec, 1, cfg)
        assert st.cycles == max(st.dram_cycles, st.sram_cycles)

    def test_macs_counted(self, spec, cfg):
        st = simulate_gemm(spec, 4, cfg)
        assert st.macs == 4 * 4096 * 4096

    def test_packing_halves_tiles_at_bb2(self, cfg):
        s2 = LayerSpec.synthetic("a", 4096, 4096, bit_budget=2, outlier_fraction=0.0)
        s4 = LayerSpec.synthetic("b", 4096, 4096, bit_budget=4, outlier_fraction=0.0)
        assert simulate_gemm(s2, 1, cfg).n_tiles == simulate_gemm(s4, 1, cfg).n_tiles / 2

    def test_lower_ebw_less_dram_time(self, cfg):
        s2 = LayerSpec.synthetic("a", 2048, 2048, bit_budget=2, outlier_fraction=0.01)
        s4 = LayerSpec.synthetic("b", 2048, 2048, bit_budget=4, outlier_fraction=0.01)
        assert simulate_gemm(s2, 1, cfg).dram_cycles < simulate_gemm(s4, 1, cfg).dram_cycles

    def test_conflicts_decrease_with_recon_units(self, spec):
        pcts = [
            simulate_gemm(spec, 1, AcceleratorConfig(n_recon=n)).conflict_pct
            for n in (1, 2, 4, 8)
        ]
        assert pcts[0] >= pcts[1] >= pcts[2] >= pcts[3]
        assert pcts[3] == 0.0

    def test_no_outliers_no_recon_traffic(self, cfg):
        s = LayerSpec.synthetic("a", 1024, 1024, bit_budget=2, outlier_fraction=0.0)
        st = simulate_gemm(s, 8, cfg)
        assert st.recon_accesses == 0 and st.conflict_pct == 0.0

    def test_rejects_zero_m(self, spec, cfg):
        with pytest.raises(ValueError):
            simulate_gemm(spec, 0, cfg)

    def test_simulate_layers_scales_by_count(self, cfg):
        s = LayerSpec.synthetic("a", 512, 512, count=3)
        one = simulate_gemm(s, 1, cfg)
        tot = simulate_layers([s], 1, cfg)
        assert tot.cycles == pytest.approx(3 * one.cycles)


class TestArea:
    def test_table5_microscopiq(self):
        assert microscopiq_area().total_mm2 == pytest.approx(0.0128, abs=0.001)

    def test_table5_olive(self):
        assert olive_area().total_mm2 == pytest.approx(0.0115, abs=0.001)

    def test_table5_gobo(self):
        assert gobo_area().total_mm2 == pytest.approx(0.216, abs=0.005)

    def test_ms_overhead_below_olive(self):
        """Table 5: MicroScopiQ 8.63% compute overhead < OliVe 9.90%."""
        ms = microscopiq_area().overhead_pct(("Base PE",))
        ol = olive_area().overhead_pct(("Base PE",))
        assert ms < ol
        assert ms < 12.0

    def test_density_ordering(self):
        ms2 = compute_density_tops_mm2(microscopiq_area(), 64, 64, 2.0)
        ol = compute_density_tops_mm2(olive_area(), 64, 64, 0.5)
        gb = compute_density_tops_mm2(gobo_area(), 64, 64, 1.0)
        assert ms2 > ol > gb
        assert ms2 / ol > 1.5  # paper: "nearly 2x"
        assert ms2 / gb > 10.0  # paper: "14x"

    def test_recon_overhead_shrinks_with_array_size(self):
        """Fig. 17: ReCoN % of compute area drops as the array grows
        (128x128 has ~3% overhead for a single unit)."""
        def frac(rows, cols):
            b = microscopiq_area(rows, cols)
            return b.by_name()["ReCoN"] / b.total_um2

        assert frac(8, 8) > frac(64, 64) > frac(128, 128)
        assert frac(128, 128) < 0.04

    def test_multiple_recon_units_scale_area(self):
        a1 = microscopiq_area(n_recon=1).total_mm2
        a8 = microscopiq_area(n_recon=8).total_mm2
        assert a8 > a1
        assert a8 / a1 < 1.6  # paper: 8 units = 1.58x compute area

    def test_sram_area_monotone(self):
        assert sram_area_mm2(2048) > sram_area_mm2(512)

    def test_noc_integration_overheads(self):
        mtia = noc_integration_overhead("mtia")
        eyeriss = noc_integration_overhead("eyeriss-v2")
        assert mtia["overhead_pct"] == pytest.approx(3.0)
        assert eyeriss["overhead_pct"] == pytest.approx(2.3)
        with pytest.raises(ValueError):
            noc_integration_overhead("tpu")


class TestEnergy:
    def test_components_positive(self, spec, cfg):
        st = simulate_gemm(spec, 4, cfg)
        rep = energy_of(st, EnergyParams(mac_bits=2))
        assert rep.core_dynamic_nj > 0
        assert rep.dram_nj > 0
        assert rep.sram_nj > 0
        assert rep.static_nj > 0
        assert rep.total_nj == pytest.approx(
            rep.core_dynamic_nj + rep.dram_nj + rep.sram_nj + rep.static_nj
        )

    def test_low_precision_macs_cheaper(self, spec, cfg):
        st = simulate_gemm(spec, 4, cfg)
        e2 = energy_of(st, EnergyParams(mac_bits=2)).core_dynamic_nj
        e16 = energy_of(st, EnergyParams(mac_bits=16)).core_dynamic_nj
        assert e2 < e16

    def test_unaligned_penalty_raises_dram(self, spec, cfg):
        st = simulate_gemm(spec, 4, cfg)
        base = energy_of(st, EnergyParams()).dram_nj
        pen = energy_of(st, EnergyParams(unaligned_dram_penalty=1.3)).dram_nj
        assert pen == pytest.approx(1.3 * base)


class TestArchComparison:
    @pytest.fixture(scope="class")
    def results(self):
        geom = GEOMETRIES["llama2-7b"]
        return {
            a: simulate_arch_inference(a, geom, prefill=1, decode_tokens=16)
            for a in ARCHS
        }

    def test_v2_is_fastest(self, results):
        best = min(results, key=lambda a: results[a].cycles)
        assert best == "microscopiq-v2"

    def test_v1_and_v2_beat_every_baseline(self, results):
        baselines = [a for a in results if not a.startswith("microscopiq")]
        for a in baselines:
            assert results["microscopiq-v1"].cycles < results[a].cycles
            assert results["microscopiq-v2"].cycles < results[a].cycles

    def test_v2_speedup_band(self, results):
        """Paper: avg 2.47x for v2, 1.50x for v1 (we accept 1.2-4x)."""
        baselines = [a for a in results if not a.startswith("microscopiq")]
        avg = np.mean([results[a].cycles for a in baselines])
        assert 1.5 < avg / results["microscopiq-v2"].cycles < 4.5
        assert 1.1 < avg / results["microscopiq-v1"].cycles < 3.0

    def test_gobo_slowest_and_most_dram_energy(self, results):
        assert results["gobo"].cycles == max(r.cycles for r in results.values())
        assert results["gobo"].energy.dram_nj == max(
            r.energy.dram_nj for r in results.values()
        )

    def test_v2_lowest_energy(self, results):
        best = min(results, key=lambda a: results[a].energy.total_nj)
        assert best == "microscopiq-v2"

    def test_workload_geometries_available(self):
        assert "llama3-8b" in GEOMETRIES
        specs = layer_specs(GEOMETRIES["llama3-8b"], bit_budget=2)
        assert len(specs) == 7
        assert all(s.count == 32 for s in specs)

    def test_gqa_models_have_smaller_kv(self):
        specs = {s.name.split(".")[1]: s for s in layer_specs(GEOMETRIES["llama3-8b"])}
        assert specs["wk"].d_out < specs["wq"].d_out
