"""Tests for the model-level quantization engine (repro.quant.engine).

Covers the Hessian store (content-keyed sharing within a model, across
settings, and its LRU bound), the grouped parallel layer dispatch
(bit-identical to the pre-refactor per-layer serial walk), the
sequential-vs-parallel calibration ablation knob, and the benchmark guard:
a 2-setting same-calibration sweep must be cheaper than 2× a 1-setting
sweep because the store computes each Hessian once.
"""

import time

import numpy as np
import pytest

from repro.baselines.registry import get_quantizer
from repro.models import build_model
from repro.quant.engine import HessianStore, quantize_model


class OneLayer:
    """Minimal duck-typed substrate: one wide linear, external calibration."""

    def __init__(self, d_out=8, d_in=768, seed=0):
        rng = np.random.default_rng(seed)
        self.weights = {"w": rng.normal(0, 1, (d_out, d_in)) / np.sqrt(d_in)}
        self.overrides: dict = {}
        self.act_quant: dict = {}
        self.linear_names = ["w"]

    def collect_calibration(self, calib):
        return {"w": calib}

    def set_override(self, name, weight):
        self.overrides[name] = weight

    def clear_overrides(self):
        self.overrides.clear()
        self.act_quant.clear()


class TestHessianStore:
    def test_fingerprint_keys_on_content_and_damp(self):
        a = np.random.default_rng(0).normal(0, 1, (32, 8))
        assert HessianStore.fingerprint(a, 0.01) == HessianStore.fingerprint(a.copy(), 0.01)
        assert HessianStore.fingerprint(a, 0.01) != HessianStore.fingerprint(a, 0.02)
        b = a.copy()
        b[0, 0] += 1e-9
        assert HessianStore.fingerprint(a, 0.01) != HessianStore.fingerprint(b, 0.01)

    def test_hit_miss_counters(self):
        store = HessianStore()
        a = np.random.default_rng(1).normal(0, 1, (32, 8))
        h1 = store.hessian(a, 0.01)
        h2 = store.hessian(a, 0.01)
        assert store.misses == 1 and store.hits == 1
        assert h1 is h2
        store.hessian(a, 0.05)
        assert store.misses == 2

    def test_lru_bound(self):
        store = HessianStore(max_entries=2)
        rng = np.random.default_rng(2)
        acts = [rng.normal(0, 1, (16, 4)) for _ in range(3)]
        for a in acts:
            store.hessian(a, 0.01)
        assert len(store) == 2
        store.hessian(acts[0], 0.01)  # evicted -> recomputed
        assert store.misses == 4

    def test_clear(self):
        store = HessianStore()
        store.hessian(np.ones((4, 2)), 0.01)
        store.clear()
        assert len(store) == 0 and store.misses == 0

    def test_concurrent_requests_coalesce(self):
        """A whole group asking for the same Hessian at once must compute it
        exactly once — co-members wait for the first caller's result."""
        import threading

        store = HessianStore()
        acts = np.random.default_rng(3).normal(0, 1, (512, 96))
        results = []

        def worker():
            results.append(store.hessian(acts, 0.01))

        threads = [threading.Thread(target=worker) for _ in range(6)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert store.misses == 1 and store.hits == 5
        assert all(r is results[0] for r in results)


def _prerefactor_serial_walk(model, method, w_bits, calib):
    """The pre-engine reference semantics: per-layer collect + quantize."""
    model.clear_overrides()
    quantizer = get_quantizer(method)
    dequants = {}
    for name in model.linear_names:
        acts = model.collect_calibration(calib)[name]
        result = quantizer(model.weights[name], acts, bits=w_bits)
        model.set_override(name, result.dequant)
        dequants[name] = result.dequant
    model.clear_overrides()
    return dequants


class TestGroupedDispatch:
    @pytest.mark.parametrize("dispatch,workers", [("serial", None), ("thread", 4)])
    def test_bit_identical_to_serial_walk(self, dispatch, workers):
        from repro.core.substrate import get_substrate

        sub = get_substrate("lm")
        model = sub.build("opt-6.7b")
        calib = sub.calibration(model)
        ref = _prerefactor_serial_walk(model, "microscopiq", 4, calib)
        quantize_model(
            model, "microscopiq", 4, calib=calib,
            dispatch=dispatch, workers=workers, hessian_store=HessianStore(),
        )
        for name in model.linear_names:
            assert np.array_equal(model.overrides[name], ref[name]), name
        model.clear_overrides()

    def test_store_shared_within_model(self):
        """wq/wk/wv (and w1/w3) share activations, hence one Hessian: the
        opt-6.7b analog has 2 blocks x 7 linears but only 2 x 4 distinct
        calibration groups."""
        model = build_model("opt-6.7b")
        store = HessianStore()
        quantize_model(
            model, "microscopiq", 4, hessian_store=store, kernel_path="reference"
        )
        n_layers = model.profile.n_layers
        assert store.misses == 4 * n_layers
        assert store.hits == 3 * n_layers
        model.clear_overrides()

        # The vector path's shape batching goes further: wq/wk/wv (and
        # w1/w3) coalesce into one kernel invocation each, so every distinct
        # Hessian is requested exactly once — same 4 per block, zero re-hits.
        model = build_model("opt-6.7b")
        store = HessianStore()
        quantize_model(
            model, "microscopiq", 4, hessian_store=store, kernel_path="vector"
        )
        assert store.misses == 4 * n_layers
        assert store.hits == 0
        model.clear_overrides()

    def test_layer_failure_raises(self):
        model = OneLayer()
        acts = np.zeros((4, 8))  # wrong d_in: quantizer must fail loudly
        with pytest.raises(RuntimeError, match="quantizing layer"):
            quantize_model(model, "gptq", 4, calib=acts, groups=[["w"]])

    def test_groups_must_partition_linear_names(self):
        """A groups override that drops a layer must be rejected, not leave
        it silently unquantized."""
        model = build_model("opt-6.7b")
        bad = [[model.linear_names[0]]]  # everything else omitted
        with pytest.raises(ValueError, match="partition"):
            quantize_model(model, "rtn", 4, groups=bad)


class TestCalibrationModes:
    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError, match="calibration"):
            quantize_model(build_model("opt-6.7b"), "rtn", 4, calibration="warp")

    def test_unknown_dispatch_rejected(self):
        with pytest.raises(KeyError, match="dispatch"):
            quantize_model(build_model("opt-6.7b"), "rtn", 4, dispatch="carrier-pigeon")

    def test_parallel_calibration_reuses_store_across_settings(self):
        model = build_model("opt-6.7b")
        store = HessianStore()
        quantize_model(model, "microscopiq", 4, calibration="parallel", hessian_store=store)
        first = store.misses
        quantize_model(model, "microscopiq", 2, calibration="parallel", hessian_store=store)
        assert store.misses == first  # second setting: all Hessians hit
        model.clear_overrides()

    def test_parallel_differs_from_sequential(self):
        """Progressive requantization changes later layers' calibration, so
        the ablation arms must diverge somewhere past the first group."""
        model = build_model("opt-6.7b")
        quantize_model(model, "microscopiq", 2, calibration="sequential",
                       hessian_store=HessianStore())
        seq = {n: model.overrides[n].copy() for n in model.linear_names}
        quantize_model(model, "microscopiq", 2, calibration="parallel",
                       hessian_store=HessianStore())
        par = {n: model.overrides[n].copy() for n in model.linear_names}
        model.clear_overrides()
        # First group (layer-0 wq/wk/wv) sees FP inputs either way.
        for n in ("layers.0.wq", "layers.0.wk", "layers.0.wv"):
            assert np.array_equal(seq[n], par[n])
        assert any(
            not np.array_equal(seq[n], par[n]) for n in model.linear_names
        )


class TestBenchmarkGuard:
    """The Hessian store must make a 2-setting same-calibration sweep
    cheaper than 2x a 1-setting sweep (sharing the Hessian work)."""

    @staticmethod
    def _sweep(bits_list, store, acts):
        model = OneLayer()
        start = time.perf_counter()
        for bits in bits_list:
            quantize_model(
                model, "gptq", bits, calib=acts, hessian_store=store,
                groups=[["w"]],
            )
        return time.perf_counter() - start

    def test_two_setting_sweep_cheaper_than_twice_one(self):
        acts = np.random.default_rng(1).normal(0, 1, (6144, 768))
        self._sweep([4], HessianStore(), acts)  # warm numpy/BLAS paths
        # min-of-2 on BOTH sides so scheduler noise biases them the same way
        # (a single noisy t_two against a min t_one would flake on shared CI).
        t_one = min(self._sweep([4], HessianStore(), acts) for _ in range(2))
        stores = [HessianStore(), HessianStore()]
        t_two = min(self._sweep([4, 2], s, acts) for s in stores)
        # Deterministic core of the guard: the second setting computed no
        # new Hessian at all.
        assert all(s.misses == 1 and s.hits == 1 for s in stores)
        # Wall-clock guard (typical ratio ~1.7 on one core; see CHANGES.md).
        assert t_two < 2.0 * t_one, f"{t_two:.3f}s !< 2x {t_one:.3f}s"
        print(
            f"\nhessian-store guard: 1-setting {t_one*1000:.0f}ms, "
            f"2-setting shared {t_two*1000:.0f}ms ({t_two/t_one:.2f}x < 2x)"
        )
