"""Command-line front end: ``python -m repro.pipeline`` / ``repro-sweep``.

Three subcommands:

* ``sweep`` — enumerate a grid (families × methods × bits × group sizes),
  run it through the cache + executor, print the pivot table, optionally
  dump JSON records;
* ``show``  — summarize what the cache already holds;
* ``clean`` — purge cached results (optionally only stale ones).
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from .cache import ResultCache
from .executor import EXECUTORS, default_workers
from .runner import run_sweep
from .spec import FP_METHOD, SweepSpec, known_methods

__all__ = ["main", "build_parser"]

DEFAULT_CACHE = ".repro-cache"


def _act_bits(text: str) -> Optional[int]:
    """'none'/'fp'/'16' all mean full-precision activations."""
    return None if text.lower() in ("none", "fp", "16") else int(text)


def _group_size(text: str) -> Optional[int]:
    """'none' means the method's default group size; 16 is a real size."""
    return None if text.lower() == "none" else int(text)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-sweep",
        description="Parallel, cached experiment sweeps over the MicroScopiQ reproduction.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sweep = sub.add_parser("sweep", help="run a (models × methods × settings) grid")
    sweep.add_argument("--families", nargs="+", required=True, metavar="FAMILY")
    sweep.add_argument(
        "--methods", nargs="+", required=True, metavar="METHOD",
        help=f"any of: {', '.join(known_methods())}",
    )
    sweep.add_argument("--w-bits", nargs="+", type=int, default=[4])
    sweep.add_argument(
        "--act-bits", nargs="+", type=_act_bits, default=[None],
        help="activation bits per setting; 'none' = weight-only",
    )
    sweep.add_argument(
        "--group-sizes", nargs="+", type=_group_size, default=[None],
        help="quantization group sizes; 'none' = method default",
    )
    sweep.add_argument(
        "--outlier-formats", nargs="+", default=[None],
        choices=[None, "mx-fp", "mx-int", "none"],
        help="MicroScopiQ outlier format axis",
    )
    sweep.add_argument("--seed", type=int, default=0)
    sweep.add_argument("--eval-sequences", type=int, default=32)
    sweep.add_argument("--eval-seq-len", type=int, default=32)
    sweep.add_argument("--cache-dir", default=DEFAULT_CACHE)
    sweep.add_argument("--no-cache", action="store_true")
    sweep.add_argument(
        "--executor", default="auto", choices=["auto"] + sorted(EXECUTORS)
    )
    sweep.add_argument("--workers", type=int, default=None)
    sweep.add_argument("--recompute", action="store_true")
    sweep.add_argument("--metric", default="ppl")
    sweep.add_argument("--json", dest="json_out", metavar="PATH",
                       help="write per-job records as JSON")
    sweep.add_argument("--quiet", action="store_true")

    show = sub.add_parser("show", help="summarize the result cache")
    show.add_argument("--cache-dir", default=DEFAULT_CACHE)
    show.add_argument("--limit", type=int, default=20)

    clean = sub.add_parser("clean", help="delete cached results")
    clean.add_argument("--cache-dir", default=DEFAULT_CACHE)
    clean.add_argument(
        "--older-than", type=float, default=None, metavar="SECONDS",
        help="only remove entries older than this",
    )
    return parser


def _print_pivot(result, metric: str) -> None:
    # Columns are full settings ("rtn W2A16"), not bare method names — a
    # multi-bit sweep must not collapse its settings into one cell.
    pivot: dict = {}
    columns: List[str] = []
    for o in result.outcomes:
        if o.metrics is None:
            continue
        spec = o.job.spec
        col = o.job.label[len(spec.family) + 1 :] if o.job.label.startswith(
            f"{spec.family}/"
        ) else o.job.label
        if col not in columns:
            columns.append(col)
        pivot.setdefault(spec.family, {})[col] = o.metrics.get(metric)
    if not columns:
        print("no successful jobs")
        return
    width = max(12, *(len(c) for c in columns)) + 2
    fam_w = max(8, *(len(f) for f in pivot)) + 2
    print("family".ljust(fam_w) + "".join(c.rjust(width) for c in columns))
    for fam, row in pivot.items():
        cells = []
        for c in columns:
            v = row.get(c)
            cells.append(("-" if v is None else f"{v:.3f}").rjust(width))
        print(fam.ljust(fam_w) + "".join(cells))


def _cmd_sweep(args: argparse.Namespace) -> int:
    try:
        spec = SweepSpec(
            families=tuple(args.families),
            methods=tuple(args.methods),
            w_bits=tuple(args.w_bits),
            act_bits=tuple(args.act_bits),
            group_sizes=tuple(args.group_sizes),
            outlier_formats=tuple(f for f in args.outlier_formats),
            eval_sequences=args.eval_sequences,
            eval_seq_len=args.eval_seq_len,
            seed=args.seed,
        )
    except KeyError as exc:
        print(f"error: {exc.args[0]}", file=sys.stderr)
        return 2
    result = run_sweep(
        spec,
        cache_dir=None if args.no_cache else args.cache_dir,
        executor=args.executor,
        workers=args.workers,
        progress=not args.quiet,
        recompute=args.recompute,
    )
    t = result.telemetry
    print(
        f"{t['done']}/{t['total']} jobs · {t['cache_hits']} cache hits · "
        f"{t['failures']} failures · {t['elapsed_s']:.2f}s wall "
        f"({t['jobs_per_s']:.2f} jobs/s, executor={t['executor']}, "
        f"workers≤{args.workers or default_workers()})"
    )
    _print_pivot(result, args.metric)
    for o in result.failures():
        print(f"FAILED {o.job.label}: {o.error['type']}: {o.error['message']}",
              file=sys.stderr)
    if args.json_out:
        with open(args.json_out, "w", encoding="utf-8") as f:
            json.dump({"telemetry": t, "records": result.records()}, f, indent=2)
        print(f"wrote {args.json_out}")
    return 1 if result.failures() else 0


def _cmd_show(args: argparse.Namespace) -> int:
    cache = ResultCache(args.cache_dir)
    stats = cache.stats()
    print(f"cache {stats['root']}: {stats['entries']} results, {stats['bytes']} bytes")
    for i, record in enumerate(cache.entries()):
        if i >= args.limit:
            print(f"... ({stats['entries'] - args.limit} more)")
            break
        metrics = record.get("metrics") or {}
        ppl = metrics.get("ppl")
        line = f"  {record.get('hash', '?')[:12]}  {record.get('label', '?'):40s}"
        if ppl is not None:
            line += f"  ppl={ppl:.3f}"
        print(line)
    return 0


def _cmd_clean(args: argparse.Namespace) -> int:
    cache = ResultCache(args.cache_dir)
    removed = cache.clean(older_than=args.older_than)
    print(f"removed {removed} cached results from {cache.root}")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "sweep":
        return _cmd_sweep(args)
    if args.command == "show":
        return _cmd_show(args)
    if args.command == "clean":
        return _cmd_clean(args)
    raise AssertionError(f"unhandled command {args.command!r}")


if __name__ == "__main__":
    raise SystemExit(main())
