"""Lint fixture: metric/span names checked against the documented vocabulary."""

from repro.obs.metrics import METRICS
from repro.obs.trace import trace


def record_typo(n):
    METRICS.incr("pipeline.jobs_computd")
    return n


def record_documented(n):
    METRICS.incr("pipeline.jobs_computed")
    return n


def span_typo(n):
    with trace("jobb"):
        return n


def span_documented(n):
    with trace("job"):
        return n


def dynamic_key(kind):
    METRICS.incr(f"pipeline.{kind}")
