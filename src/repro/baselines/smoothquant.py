"""SmoothQuant [Xiao et al. 2023]: migrate activation outliers, then RTN.

SmoothQuant's contribution is the α = 0.5 difficulty-migration transform for
weight-activation quantization; weights themselves use plain RTN afterwards.
"""

from __future__ import annotations

import numpy as np

from ..quant.activation import ActivationQuantizer, apply_migration
from .base import BaselineResult, rtn_group_quantize

__all__ = ["quantize_smoothquant"]


def quantize_smoothquant(
    weights: np.ndarray,
    calib_inputs: np.ndarray | None = None,
    bits: int = 4,
    act_bits: int = 8,
    alpha: float = 0.5,
    group_size: int = 128,
) -> BaselineResult:
    """SmoothQuant W/A quantization; ``meta['act_quantizer']`` handles X."""
    w = np.asarray(weights, dtype=np.float64)
    if calib_inputs is None:
        dq = rtn_group_quantize(w, bits, group_size)
        return BaselineResult("smoothquant", dq, float(bits), {"alpha": 0.0})
    smoothed_w, _, scales = apply_migration(w, calib_inputs, alpha)
    dq = rtn_group_quantize(smoothed_w, bits, group_size) / scales[None, :]
    act_q = ActivationQuantizer(scales, act_bits, group_size)
    # `dq` is expressed in the original weight space (the 1/s fold-back);
    # pairing it with the rescaling ActivationQuantizer reproduces deployed
    # numerics exactly.
    return BaselineResult(
        "smoothquant",
        dq,
        float(bits),
        {"alpha": alpha, "scales": scales, "act_quantizer": act_q},
    )
