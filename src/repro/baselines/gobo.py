"""GOBO [Zadeh et al. 2020]: centroid inliers + full-precision sparse outliers.

GOBO clusters inlier weights of a layer into ``2**bits`` centroids
(dictionary quantization) and stores every 3σ outlier *exactly* (FP32) in a
sparse side structure. Accuracy is excellent; the cost is a huge effective
bit-width and unaligned sparse accesses — exactly the Group-A trade-off of
Table 1.
"""

from __future__ import annotations

import numpy as np

from ..formats.ebw import gobo_ebw
from ..quant.outliers import outlier_mask
from .base import BaselineResult

__all__ = ["quantize_gobo"]


def _kmeans_1d(values: np.ndarray, k: int, iters: int = 0) -> np.ndarray:
    """Lightweight 1-D Lloyd's k-means with quantile initialization."""
    if values.size == 0:
        return np.zeros(k)
    qs = np.linspace(0.0, 1.0, k + 2)[1:-1]
    centroids = np.quantile(values, qs)
    for _ in range(iters):
        idx = np.argmin(np.abs(values[:, None] - centroids[None, :]), axis=1)
        for c in range(k):
            members = values[idx == c]
            if members.size:
                centroids[c] = members.mean()
    return np.sort(centroids)


def quantize_gobo(
    weights: np.ndarray,
    calib_inputs: np.ndarray | None = None,
    bits: int = 4,
    sigma_threshold: float = 3.0,
    sample_limit: int = 65536,
    kmeans_iters: int = 0,
) -> BaselineResult:
    """GOBO quantization (ignores calibration data; clustering is per layer).

    ``kmeans_iters=0`` reproduces GOBO's deterministic probability-mass
    binning (centroids at inlier quantiles); positive values refine with
    Lloyd iterations (stronger than the published method).
    """
    w = np.asarray(weights, dtype=np.float64)
    omask = outlier_mask(w, sigma_threshold, axis=None)
    inliers = w[~omask]
    rng = np.random.default_rng(0)
    sample = inliers
    if inliers.size > sample_limit:
        sample = rng.choice(inliers.ravel(), size=sample_limit, replace=False)
    centroids = _kmeans_1d(
        np.asarray(sample, dtype=np.float64).ravel(), 2**bits, iters=kmeans_iters
    )

    dq = w.copy()  # outliers stored exactly
    flat = w[~omask]
    idx = np.argmin(np.abs(flat[:, None] - centroids[None, :]), axis=1)
    dq[~omask] = centroids[idx]

    frac = float(omask.mean())
    ebw = gobo_ebw(frac, inlier_bits=bits)
    return BaselineResult(
        "gobo", dq, ebw, {"outlier_fraction": frac, "centroids": centroids}
    )
