"""OliVe [Guo et al. 2023]: outlier-victim pair quantization.

OliVe keeps memory aligned by quantizing outliers *in place* at the same
bit-width as inliers but in the wide-range "abfloat" format; the element
**adjacent** to each outlier is sacrificed ("victim") — pruned to zero and
reused as the format identifier. The paper's §3.2 critique is reproduced
faithfully: when two outliers are adjacent, the second one becomes the
victim and is destroyed, which is what craters OliVe's accuracy on modern
FMs with >0.5% adjacent outliers.

Abfloat: sign + exponent with a per-group adaptive bias,
``value = ±2^(e + bias)``; 4-bit gives e ∈ [0, 7].
"""

from __future__ import annotations

import numpy as np

from ..quant.kernel import BlockQuantKernel
from ..quant.vector import resolve_kernel_path
from .base import BaselineResult, group_float_scale

__all__ = ["quantize_olive"]


def _abfloat_encode(values: np.ndarray, bits: int) -> np.ndarray:
    """Round magnitudes to signed powers of two with an adaptive bias."""
    e_levels = 2 ** (bits - 1)  # exponent values per sign
    mag = np.abs(values)
    vmax = float(mag.max())
    if vmax == 0.0:
        return np.zeros_like(values)
    bias = int(np.floor(np.log2(vmax))) - (e_levels - 1)
    with np.errstate(divide="ignore"):
        e = np.rint(np.log2(np.where(mag == 0.0, 1e-30, mag))) - bias
    e = np.clip(e, 0, e_levels - 1)
    return np.sign(values) * 2.0 ** (e + bias)


def _abfloat_encode_each(values: np.ndarray, bits: int) -> np.ndarray:
    """Elementwise abfloat: each value is its own group (adaptive bias from
    itself) — exactly ``_abfloat_encode(values[i:i+1], bits)`` per element,
    which is how OliVe encodes outliers in place."""
    e_levels = 2 ** (bits - 1)
    mag = np.abs(values)
    out = np.zeros_like(values)
    nz = mag > 0.0
    if np.any(nz):
        l2 = np.log2(mag[nz])
        bias = np.floor(l2) - (e_levels - 1)
        e = np.clip(np.rint(l2) - bias, 0, e_levels - 1)
        out[nz] = np.sign(values[nz]) * 2.0 ** (e + bias)
    return out


def quantize_olive(
    weights: np.ndarray,
    calib_inputs: np.ndarray | None = None,
    bits: int = 4,
    group_size: int = 128,
    sigma_threshold: float = 3.0,
) -> BaselineResult:
    """OliVe outlier-victim-pair quantization (ignores calibration data)."""
    w = np.asarray(weights, dtype=np.float64)
    d_out, d_in = w.shape
    maxq = 2 ** (bits - 1) - 1
    dq = np.empty_like(w)
    n_victim_outliers = 0

    kernel = BlockQuantKernel(group_size, sigma_threshold)
    vector = resolve_kernel_path() == "vector"
    for lo, hi in kernel.blocks(d_in):
        block = w[:, lo:hi]
        omask = kernel.separate(block)
        scale = group_float_scale(np.where(omask, 0.0, block), bits)
        q = np.clip(np.rint(block / scale), -maxq, maxq) * scale
        width = block.shape[1]

        if vector:
            # Column-sequential scan over all rows at once: processing
            # columns left-to-right with a per-row victim mask replays the
            # reference per-row walk exactly (a column's victim flag can only
            # be set by the column before it).
            victimized = np.zeros_like(omask)
            for c in np.nonzero(omask.any(axis=0))[0]:
                sel = omask[:, c] & ~victimized[:, c]
                if not sel.any():
                    continue
                q[sel, c] = _abfloat_encode_each(block[sel, c], bits)
                victim = c + 1 if c + 1 < width else c - 1
                if victim >= 0:
                    n_victim_outliers += int(np.count_nonzero(omask[sel, victim]))
                    q[sel, victim] = 0.0
                    victimized[sel, victim] = True
        else:
            for r in range(d_out):
                cols = np.nonzero(omask[r])[0]
                victims: set[int] = set()
                for c in cols:
                    if c in victims:
                        continue  # this outlier was already destroyed as a victim
                    q[r, c] = _abfloat_encode(block[r, c : c + 1], bits)[0]
                    # The adjacent slot becomes the identifier: prune it — even
                    # if it is itself an outlier (OliVe's locality assumption).
                    victim = c + 1 if c + 1 < width else c - 1
                    if victim >= 0:
                        if omask[r, victim]:
                            n_victim_outliers += 1
                        q[r, victim] = 0.0
                        victims.add(victim)
        dq[:, lo:hi] = q

    return BaselineResult(
        "olive",
        dq,
        float(bits),
        {"victim_outliers": n_victim_outliers, "group_size": group_size},
    )
