"""Fig. 13: A100 GPU vs the MicroScopiQ accelerator, iso-bandwidth.

Shape: at matched off-chip bandwidth (2 TB/s), MicroScopiQ v1 ~1.2x and
v2 ~1.7x faster than the A100 running W4A4, with lower energy (the GPU
pays register-level reordering and FP16 overheads)."""

import pytest

from repro.accelerator import ARCHS, GEOMETRIES, AcceleratorConfig, simulate_arch_inference
from repro.gpu import decode_step_ms
from benchmarks.conftest import print_table

MODELS = ["llama2-7b", "llama2-13b"]


def compute():
    # Paper §7.6: iso-bandwidth (2 TB/s off-chip, abundant on-chip) AND
    # iso-compute — the accelerator is scaled to the A100's 55,296
    # multipliers (216 x 256 array), not the 64x64 instance.
    cfg = AcceleratorConfig(rows=216, cols=256, dram_gbps=2039.0, sram_gbps=2039.0)
    out = {}
    for model in MODELS:
        geom = GEOMETRIES[model]
        gpu_ms = decode_step_ms("atom-w4a4", model) * 32
        for arch in ("microscopiq-v1", "microscopiq-v2"):
            r = simulate_arch_inference(arch, geom, prefill=1, decode_tokens=32, cfg=cfg)
            out[(model, arch)] = gpu_ms / r.latency_ms
    return out


@pytest.mark.benchmark(group="fig13")
def test_fig13_gpu_vs_accelerator(benchmark):
    speed = benchmark.pedantic(compute, rounds=1, iterations=1)
    rows = [
        [m, a, f"{s:.2f}x"]
        for (m, a), s in sorted(speed.items())
    ]
    print_table(
        "Fig. 13 — speedup over A100 W4A4 at iso-bandwidth (paper: v1 1.2x, v2 1.7x)",
        ["model", "arch", "speedup"],
        rows,
    )
    for model in MODELS:
        v1 = speed[(model, "microscopiq-v1")]
        v2 = speed[(model, "microscopiq-v2")]
        assert v2 > v1, "bb=2 packing must extend the lead"
        assert v1 > 0.8, "v1 at least competitive with the GPU"
        assert 1.0 < v2 < 4.0
