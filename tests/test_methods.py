"""Tests for the first-class method API: specs, validation, lifecycle,
HessianBundle factor reuse, and the engine/pipeline integration of both.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.methods import (
    METHODS,
    HessianBundle,
    HessianStore,
    LayerContext,
    MethodParamError,
    MethodSpec,
    MethodSubstrateError,
    Param,
    Quantizer,
    get_method,
    known_method_names,
)
from repro.models import build_model
from repro.quant.engine import quantize_model


class TestRegistry:
    def test_all_eleven_builtins_registered(self):
        assert known_method_names() == sorted(
            [
                "rtn", "gptq", "awq", "smoothquant", "omniquant", "atom",
                "sdq", "olive", "gobo", "microscopiq", "omni-microscopiq",
            ]
        )

    def test_specs_are_method_specs_with_quantizer_factories(self):
        for name in known_method_names():
            spec = get_method(name)
            assert isinstance(spec, MethodSpec)
            q = spec.make()
            assert isinstance(q, Quantizer)  # structural protocol check

    def test_capability_flags_match_engine_expectations(self):
        """The flags that replaced the engine's hard-coded method sets."""
        hessian = {n for n in METHODS if METHODS[n].needs_hessian}
        assert hessian == {"gptq", "atom", "microscopiq", "omni-microscopiq"}
        act = {n for n in METHODS if METHODS[n].act_aware}
        assert act == {"smoothquant", "omniquant", "atom", "microscopiq", "omni-microscopiq"}
        # Migration methods rescale calibration per α: no precomputed H in WA mode.
        assert not METHODS["microscopiq"].hessian_with_act
        assert METHODS["gptq"].hessian_with_act
        assert METHODS["rtn"].supports_per_tensor
        assert METHODS["gobo"].group_param is None
        assert METHODS["microscopiq"].group_param == "macro_block"
        assert METHODS["gptq"].group_param == "group_size"

    def test_builtins_support_every_substrate(self):
        from repro.core.substrate import SUBSTRATES

        for name in known_method_names():
            for sub in SUBSTRATES:
                assert METHODS[name].supports_substrate(sub)


class TestParamValidation:
    def test_unknown_param_lists_schema(self):
        with pytest.raises(MethodParamError, match=r"unknown parameter.*'warp'"):
            get_method("rtn").validate_params({"warp": 9})
        # The error names the actual schema so the fix is self-evident.
        with pytest.raises(MethodParamError, match=r"group_size=128"):
            get_method("rtn").validate_params({"warp": 9})

    def test_type_and_choice_violations(self):
        with pytest.raises(MethodParamError, match="expects int"):
            get_method("gptq").validate_params({"group_size": "big"})
        with pytest.raises(MethodParamError, match="must be one of"):
            get_method("microscopiq").validate_params({"outlier_format": "ascii"})
        with pytest.raises(MethodParamError, match="got bool"):
            get_method("gptq").validate_params({"group_size": True})

    def test_valid_params_pass_through(self):
        params = {"group_size": 64, "damp_ratio": 0.02}
        assert get_method("gptq").validate_params(params) == params

    def test_engine_rejects_unknown_kwarg_before_any_work(self):
        """The satellite fix: unknown kwargs used to thread through **kwargs
        and die (or vanish) deep in the kernel; now the engine front door
        rejects them with the schema."""
        model = build_model("opt-6.7b")
        with pytest.raises(MethodParamError, match="schema"):
            quantize_model(model, "rtn", 4, warp_drive=1)
        assert not model.overrides  # nothing was touched

    def test_experiment_spec_rejects_unknown_param_at_build_time(self):
        from repro.pipeline import ExperimentSpec

        with pytest.raises(MethodParamError, match="rtn"):
            ExperimentSpec(family="opt-6.7b", method="rtn", quant_kwargs={"bogus": 1})

    def test_experiment_spec_rejects_unknown_method(self):
        from repro.pipeline import ExperimentSpec

        with pytest.raises(KeyError, match="unknown method"):
            ExperimentSpec(family="opt-6.7b", method="warp-drive")

    def test_sweep_rejects_quant_kwarg_no_method_accepts(self):
        from repro.pipeline import SweepSpec

        with pytest.raises(KeyError, match="not a parameter of any"):
            SweepSpec(
                families=("opt-6.7b",),
                methods=("rtn", "gptq"),
                quant_kwargs={"macro_bloc": 64},  # typo'd MicroScopiQ knob
            )

    def test_sweep_routes_shared_kwargs_per_method_schema(self):
        from repro.pipeline import SweepSpec

        sweep = SweepSpec(
            families=("opt-6.7b",),
            methods=("rtn", "gptq"),
            quant_kwargs={"damp_ratio": 0.02},  # gptq-only knob
        )
        by_method = {s.method: dict(s.quant_kwargs) for s in sweep.specs()}
        assert by_method["gptq"] == {"damp_ratio": 0.02}
        assert by_method["rtn"] == {}


class TestSubstrateCapability:
    def _lm_only_spec(self) -> MethodSpec:
        rtn = get_method("rtn")
        return MethodSpec(
            name="rtn-lm-only",
            summary="rtn restricted to the lm substrate (test double)",
            make=rtn.make,
            params=rtn.params,
            supported_substrates=("lm",),
        )

    def test_engine_refuses_wrong_substrate(self):
        from repro.models.cnn import build_cnn

        spec = self._lm_only_spec()
        net = build_cnn("resnet50")
        with pytest.raises(MethodSubstrateError, match="does not support"):
            quantize_model(net, spec, 4)
        model = build_model("opt-6.7b")
        quantize_model(model, spec, 4)  # the supported pair still works
        assert model.overrides
        model.clear_overrides()

    def test_spec_build_refuses_wrong_substrate(self):
        from repro.methods import register_method
        from repro.pipeline import ExperimentSpec

        spec = self._lm_only_spec()
        register_method(spec)
        try:
            with pytest.raises(MethodSubstrateError, match="does not support"):
                ExperimentSpec(family="resnet50", substrate="cnn", method=spec.name)
            ExperimentSpec(family="opt-6.7b", substrate="lm", method=spec.name)
        finally:
            del METHODS[spec.name]

    def test_sweep_skips_invalid_method_substrate_pairs(self):
        from repro.methods import register_method
        from repro.pipeline import SweepSpec

        spec = self._lm_only_spec()
        register_method(spec)
        try:
            sweep = SweepSpec(
                families=("opt-6.7b", "resnet50"),
                methods=("rtn", spec.name),
                substrates=("lm", "cnn"),
            )
            cells = {(s.substrate, s.method) for s in sweep.specs()}
            assert ("lm", spec.name) in cells
            assert ("cnn", "rtn") in cells
            assert ("cnn", spec.name) not in cells  # skipped, like bad families
        finally:
            del METHODS[spec.name]


class TestHessianBundle:
    def test_factors_lazy_and_computed_once(self):
        acts = np.random.default_rng(0).normal(0, 1, (64, 16))
        bundle = HessianBundle(acts, 0.01)
        assert bundle.h_builds == 0 and bundle.inversions == 0
        h1, h2 = bundle.h, bundle.h
        assert h1 is h2 and bundle.h_builds == 1
        assert bundle.acts is None  # activations released once H exists
        assert bundle.inversions == 0  # still nothing inverted
        d1 = bundle.hinv_diag
        u1 = bundle.u_factor
        assert bundle.inversions == 1  # hinv shared by diag and factor
        assert bundle.factorizations == 1
        assert d1 is bundle.hinv_diag and u1 is bundle.u_factor

    def test_factors_match_reference_functions(self):
        from repro.quant.hessian import (
            cholesky_inverse_factor,
            inverse_hessian,
            layer_hessian,
        )

        acts = np.random.default_rng(1).normal(0, 1, (64, 16))
        bundle = HessianBundle(acts, 0.02)
        h = layer_hessian(acts, 0.02)
        assert np.array_equal(bundle.h, h)
        assert np.array_equal(bundle.hinv, inverse_hessian(h))
        assert np.array_equal(bundle.hinv_diag, np.diag(inverse_hessian(h)))
        assert np.array_equal(bundle.u_factor, cholesky_inverse_factor(h))

    def test_wrap_raw_matrix(self):
        h = np.eye(4) * 2.0
        bundle = HessianBundle.wrap(h)
        assert bundle.h is h and bundle.h_builds == 0
        assert HessianBundle.wrap(bundle) is bundle

    def test_needs_some_source(self):
        with pytest.raises(ValueError, match="needs"):
            HessianBundle()

    def test_store_bundle_identity_across_settings(self):
        store = HessianStore()
        acts = np.random.default_rng(2).normal(0, 1, (32, 8))
        b1 = store.bundle(acts, 0.01)
        b2 = store.bundle(acts.copy(), 0.01)
        assert b1 is b2 and store.misses == 1 and store.hits == 1
        assert store.bundle(acts, 0.05) is not b1  # damp is part of the key


class TestFactorReuseAcrossSettings:
    def test_two_setting_sweep_reinverts_zero_hessians(self):
        """The ROADMAP item this API closes: the second setting of a
        same-calibration sweep must not invert (or re-factorize) anything —
        every O(d³) factor comes out of the first setting's bundles."""
        model = build_model("opt-6.7b")
        store = HessianStore()
        quantize_model(model, "gptq", 4, calibration="parallel", hessian_store=store)
        inv_after_first = store.inversions
        fact_after_first = store.factorizations
        assert inv_after_first > 0 and fact_after_first > 0
        quantize_model(model, "gptq", 2, calibration="parallel", hessian_store=store)
        assert store.misses == len(store)  # no new Hessians either
        assert store.inversions == inv_after_first, "second setting re-inverted"
        assert store.factorizations == fact_after_first, "second setting re-factorized"
        model.clear_overrides()

    def test_microscopiq_shares_factors_with_gptq(self):
        """One bundle serves different methods at the same (calib, damp):
        gptq's Cholesky is microscopiq's Cholesky."""
        model = build_model("opt-6.7b")
        store = HessianStore()
        quantize_model(model, "gptq", 4, calibration="parallel", hessian_store=store)
        inversions = store.inversions
        quantize_model(model, "microscopiq", 4, calibration="parallel", hessian_store=store)
        assert store.misses == len(store)
        assert store.inversions == inversions  # reused, not recomputed
        model.clear_overrides()


class TestLifecycle:
    def test_prepare_resolves_bundle_from_store(self, weights, calib):
        spec = get_method("gptq")
        store = HessianStore()
        q = spec.make()
        ctx = LayerContext(
            name="w", weights=weights, calib_inputs=calib,
            w_bits=4, params={"bits": 4}, hessian_store=store, spec=spec,
        )
        res = q.prepare(ctx)
        assert res.hessian is store.bundle(calib, 0.01)
        assert store.misses == 1

    def test_prepare_skips_bundle_in_migration_mode(self, weights, calib):
        """hessian_with_act=False: MicroScopiQ's α migration rescales the
        calibration, so WA mode must not consume a precomputed bundle."""
        spec = get_method("microscopiq")
        store = HessianStore()
        q = spec.make()
        ctx = LayerContext(
            name="w", weights=weights, calib_inputs=calib,
            w_bits=4, act_bits=8, params={"bits": 4, "act_bits": 8},
            hessian_store=store, spec=spec,
        )
        res = q.prepare(ctx)
        assert res.hessian is None and len(store) == 0

    def test_one_shot_quantize_rejects_act_bits_on_weight_only_method(self, weights):
        with pytest.raises(MethodParamError, match="weight-only"):
            get_method("rtn").quantize(weights, None, bits=4, act_bits=8)

    def test_config_object_and_flat_fields_are_exclusive(self, weights, calib):
        from repro.quant import MicroScopiQConfig

        spec = get_method("microscopiq")
        with pytest.raises(MethodParamError, match="not both"):
            spec.quantize(
                weights, calib, bits=4,
                config=MicroScopiQConfig(inlier_bits=4), micro_block=16,
            )

    def test_flat_config_fields_inherit_w_bits(self, weights, calib):
        """Pipeline-style flat fields default inlier_bits to the setting's
        weight bits — the old harness _split_quant_kwargs contract."""
        from repro.quant import MicroScopiQConfig, quantize_matrix

        spec = get_method("microscopiq")
        res = spec.quantize(weights, calib, bits=2, micro_block=16)
        ref = quantize_matrix(
            weights, calib, MicroScopiQConfig(inlier_bits=2, micro_block=16)
        )
        assert np.array_equal(res.dequant, ref.dequant)
