"""Table 2: WikiText2-analog perplexity across models, methods, settings.

Paper shape to reproduce, per quantization setting:

* W4A16 — MicroScopiQ best or tied-best of all methods; near-lossless
  (small gap to FP); OliVe clearly worst.
* W4A4 — MicroScopiQ beats OmniQuant, SmoothQuant, Atom, OliVe.
* W2A16 — MicroScopiQ beats OmniQuant and SDQ.
* W2A8 — MicroScopiQ beats OmniQuant and Atom.
"""

import pytest

from repro.pipeline import ExperimentSpec

from benchmarks.conftest import TABLE2_FAMILIES, print_table

SETTINGS = {
    "W4A16": (4, None, ["microscopiq", "gptq", "awq", "omniquant", "gobo", "olive"]),
    "W4A4": (4, 4, ["microscopiq", "omniquant", "smoothquant", "atom", "olive"]),
    "W2A16": (2, None, ["microscopiq", "omniquant", "sdq"]),
    "W2A8": (2, 8, ["microscopiq", "omniquant", "atom"]),
}


def compute_table(ppl_cache):
    # Declare the full (family × setting × method) grid up front and hand it
    # to the pipeline as ONE sweep — batch dispatch parallelizes across cores
    # and the content-addressed cache dedupes the shared FP column.
    specs = [ExperimentSpec(family=f) for f in TABLE2_FAMILIES]
    for family in TABLE2_FAMILIES:
        for _, (wb, ab, methods) in SETTINGS.items():
            specs += [
                ExperimentSpec(family=family, method=m, w_bits=wb, act_bits=ab)
                for m in methods
            ]
    ppl_cache.prefetch(specs)

    table = {}
    for family in TABLE2_FAMILIES:
        table[(family, "fp")] = ppl_cache.fp_ppl(family)
        for setting, (wb, ab, methods) in SETTINGS.items():
            for m in methods:
                table[(family, setting, m)] = ppl_cache.ppl(family, m, wb, ab)
    return table


@pytest.mark.benchmark(group="table2")
def test_table2_ppl(benchmark, ppl_cache):
    table = benchmark.pedantic(compute_table, args=(ppl_cache,), rounds=1, iterations=1)

    for setting, (wb, ab, methods) in SETTINGS.items():
        rows = []
        for family in TABLE2_FAMILIES:
            row = [family, f"{table[(family, 'fp')]:.2f}"] + [
                f"{table[(family, setting, m)]:.2f}" for m in methods
            ]
            rows.append(row)
        print_table(
            f"Table 2 ({setting}) — PPL, lower is better",
            ["model", "fp16"] + methods,
            rows,
        )

    # --- shape assertions -------------------------------------------------
    wins = 0
    for family in TABLE2_FAMILIES:
        fp = table[(family, "fp")]
        for setting, (wb, ab, methods) in SETTINGS.items():
            ms = table[(family, setting, "microscopiq")]
            others = [table[(family, setting, m)] for m in methods if m != "microscopiq"]
            assert ms > fp * 0.98, "quantized PPL must not beat FP"
            wins += sum(ms <= o * 1.02 for o in others)
        # W4A16 near-lossless: within 35% of FP on the toy substrate
        assert table[(family, "W4A16", "microscopiq")] < fp * 1.6
        # OliVe worst at W4A16 (its locality assumption)
        w4 = {m: table[(family, "W4A16", m)] for m in SETTINGS["W4A16"][2]}
        assert w4["olive"] >= sorted(w4.values())[-2] * 0.9
    total = sum(len(m) - 1 for _, (_, _, m) in SETTINGS.items()) * len(TABLE2_FAMILIES)
    # MicroScopiQ wins (or ties within 2%) the large majority of cells.
    assert wins / total > 0.8, f"MicroScopiQ won only {wins}/{total} comparisons"
