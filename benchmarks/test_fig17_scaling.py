"""Fig. 17: total area scaling across array sizes vs OliVe.

Paper shape: the single-ReCoN MicroScopiQ variant stays below OliVe's
area at every scale; ReCoN's share of area shrinks as the array grows
(3% at 128x128); the 8-ReCoN variant costs only ~11% extra at 128x128
and is comparable to OliVe.

Every (array size × design) point is a pipeline-cached ``repro.hw`` job
(``hw_kwargs`` carries rows/cols/n_recon/buffer_kb); the golden check
asserts the job areas equal the direct area-model calls bit-for-bit."""

import pytest

from repro.hw import microscopiq_area, olive_area, sram_area_mm2
from repro.pipeline import ExperimentSpec
from benchmarks.conftest import print_table, run_hw_sweep

SCALES = [(8, 8, 64), (16, 16, 128), (64, 64, 512), (128, 128, 1024)]


def _spec(arch: str, r: int, c: int, buf_kb: int, **knobs):
    hw = dict(rows=r, cols=c, buffer_kb=buf_kb, prefill=1, decode_tokens=1, **knobs)
    return ExperimentSpec(
        family="llama3-8b", arch=arch, hw_kwargs=tuple(sorted(hw.items()))
    )


def compute(cache_dir):
    grid = {}
    for r, c, buf in SCALES:
        grid[(r, c, "ms1")] = _spec("microscopiq-v2", r, c, buf, n_recon=1)
        grid[(r, c, "ms8")] = _spec("microscopiq-v2", r, c, buf, n_recon=8)
        grid[(r, c, "olive")] = _spec("olive", r, c, buf)
    result = run_hw_sweep(list(grid.values()), cache_dir)
    rows = []
    for r, c, _buf in SCALES:
        ms1 = result[grid[(r, c, "ms1")]]
        ms8 = result[grid[(r, c, "ms8")]]
        ol = result[grid[(r, c, "olive")]]
        rows.append(
            (
                f"{r}x{c}",
                ms1["area_mm2"],
                ms8["area_mm2"],
                ol["area_mm2"],
                ms1["area_components"]["ReCoN"] / ms1["area_um2"] * 100,
                ms1["sram_mm2"],
            )
        )
    return rows


@pytest.mark.benchmark(group="fig17")
def test_fig17_area_scaling(benchmark, hw_cache):
    rows = benchmark.pedantic(compute, args=(hw_cache,), rounds=1, iterations=1)
    print_table(
        "Fig. 17 — compute area (mm²) across array sizes",
        ["array", "MS (1 ReCoN)", "MS (8 ReCoN)", "OliVe", "ReCoN % of compute", "SRAM mm²"],
        [
            [a, f"{m1:.4f}", f"{m8:.4f}", f"{o:.4f}", f"{rp:.1f}", f"{s:.2f}"]
            for a, m1, m8, o, rp, s in rows
        ],
    )
    recon_pcts = [r[4] for r in rows]
    assert recon_pcts == sorted(recon_pcts, reverse=True), "ReCoN share shrinks"
    assert recon_pcts[-1] < 4.0, "~3% at 128x128 (paper)"
    for _, ms1, ms8, ol, _, _ in rows:
        assert ms1 < ol * 1.25, "1-ReCoN variant at or below OliVe-class area"
        assert ms8 / ms1 < 1.7, "8 units cost bounded extra compute area"
    # Golden: the pipeline jobs reproduce the direct area models bit-for-bit.
    for (r, c, buf), (_, m1, m8, ol, rp, sram) in zip(SCALES, rows):
        ms1 = microscopiq_area(r, c, n_recon=1)
        assert m1 == ms1.total_mm2
        assert m8 == microscopiq_area(r, c, n_recon=8).total_mm2
        assert ol == olive_area(r, c).total_mm2
        assert rp == ms1.by_name()["ReCoN"] / ms1.total_um2 * 100
        assert sram == sram_area_mm2(buf) + sram_area_mm2(2048)
