"""``repro-lint`` — run the static invariant checker from the command line.

Usage::

    repro-lint [paths...] [--format text|gcc|json]
               [--baseline check|write|off] [--baseline-file PATH]
               [--select rule-id,rule-id] [--list-rules]

Exit codes: 0 = clean (or every finding baselined), 1 = new findings,
2 = usage error. ``--format gcc`` emits ``path:line: error: ...`` lines for
editor/CI annotation; ``--format json`` dumps findings plus the
new/stale-vs-baseline split for tooling.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from . import rules  # noqa: F401  (register the built-in rules)
from .engine import (
    BASELINE_DEFAULT,
    Finding,
    RULES,
    build_project,
    load_baseline,
    partition_against_baseline,
    run_rules,
    write_baseline,
)


def _default_paths() -> list[Path]:
    src = Path("src") / "repro"
    if src.is_dir():
        return [src]
    if Path("repro").is_dir():
        return [Path("repro")]
    return [Path(".")]


def _render_text(findings: list[Finding], stale: list[str]) -> None:
    for f in findings:
        print(f"{f.path}:{f.line}: [{f.rule}] {f.message}")
        if f.hint:
            print(f"    hint: {f.hint}")
    if stale:
        print(f"note: {len(stale)} stale baseline entr{'y' if len(stale) == 1 else 'ies'} "
              "(fixed findings still listed) — run --baseline write to shrink:")
        for key in stale:
            print(f"    {key}")
    n = len(findings)
    print(f"repro-lint: {n} new finding{'s' if n != 1 else ''}")


def _render_gcc(findings: list[Finding]) -> None:
    for f in findings:
        print(f"{f.path}:{f.line}:1: error: {f.message} [{f.rule}]")


def _render_json(
    findings: list[Finding], all_findings: list[Finding], stale: list[str]
) -> None:
    payload = {
        "findings": [f.as_dict() for f in all_findings],
        "new": [f.as_dict() for f in findings],
        "stale_baseline_keys": stale,
    }
    print(json.dumps(payload, indent=2))


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description="static invariant checker for the repro stack",
    )
    parser.add_argument(
        "paths", nargs="*", type=Path,
        help="files or directories to lint (default: src/repro)",
    )
    parser.add_argument(
        "--format", choices=("text", "gcc", "json"), default="text",
        dest="fmt", help="output format (default: text)",
    )
    parser.add_argument(
        "--baseline", choices=("check", "write", "off"), default="check",
        help="baseline mode: check = fail only on non-baselined findings "
        "(default), write = regenerate the baseline file, off = ignore it",
    )
    parser.add_argument(
        "--baseline-file", type=Path, default=Path(BASELINE_DEFAULT),
        help=f"baseline file path (default: {BASELINE_DEFAULT})",
    )
    parser.add_argument(
        "--select", default=None,
        help="comma-separated rule ids to run (default: all)",
    )
    parser.add_argument(
        "--list-rules", action="store_true", help="list rules and exit",
    )
    args = parser.parse_args(argv)

    if args.list_rules:
        width = max(len(r) for r in RULES)
        for rule_id in sorted(RULES):
            print(f"{rule_id:<{width}}  {RULES[rule_id].summary}")
        return 0

    select = None
    if args.select:
        select = [s.strip() for s in args.select.split(",") if s.strip()]
        unknown = [s for s in select if s not in RULES]
        if unknown:
            print(
                f"repro-lint: unknown rule id(s): {', '.join(unknown)} "
                f"(see --list-rules)",
                file=sys.stderr,
            )
            return 2

    paths = args.paths or _default_paths()
    missing = [p for p in paths if not p.exists()]
    if missing:
        print(
            f"repro-lint: no such path: {', '.join(map(str, missing))}",
            file=sys.stderr,
        )
        return 2

    project = build_project(paths)
    findings = run_rules(project, select=select)

    if args.baseline == "write":
        write_baseline(args.baseline_file, findings)
        print(
            f"repro-lint: wrote {len(findings)} finding"
            f"{'s' if len(findings) != 1 else ''} to {args.baseline_file}"
        )
        return 0

    stale: list[str] = []
    new = findings
    if args.baseline == "check":
        baseline = load_baseline(args.baseline_file)
        new, stale = partition_against_baseline(findings, baseline)

    if args.fmt == "gcc":
        _render_gcc(new)
    elif args.fmt == "json":
        _render_json(new, findings, stale)
    else:
        _render_text(new, stale)

    return 1 if new else 0


if __name__ == "__main__":
    raise SystemExit(main())
