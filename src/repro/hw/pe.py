"""Functional model of the multi-precision MicroScopiQ PE (paper §5.3, Fig. 7a).

The PE is built from four 4-bit × 2-bit integer multipliers whose partial
products are combined by shifters according to the MODE signal (Eq. 5):

* ``MODE_4b``: one 4-bit weight × 8-bit iAct per cycle;
* ``MODE_2b``: two independent 2-bit weights sharing the same iAct, doubling
  throughput (the two weights come from adjacent output channels).

The accumulate stage either adds the product into the incoming partial sum
(inlier weights) or, when the PE holds an outlier *half*, concatenates
(Res, iAcc) and offloads the accumulation to ReCoN (``Outlier_Present``).

This model is bit-faithful for the multiplier tree: weights and activations
are decomposed into the exact sub-fields the hardware multiplies.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple, Union

__all__ = ["MODE_2B", "MODE_4B", "pe_multiply_4b", "pe_multiply_2b", "OutlierHalfProduct", "MultiPrecisionPE"]

MODE_4B = "4b"
MODE_2B = "2b"


def _check_signed(value: int, bits: int, what: str) -> None:
    lo, hi = -(2 ** (bits - 1)), 2 ** (bits - 1) - 1
    if not lo <= value <= hi:
        raise ValueError(f"{what} {value} out of {bits}-bit signed range [{lo}, {hi}]")


def _split_iact(iact: int) -> Tuple[int, int]:
    """Split an 8-bit signed iAct into (signed high nibble, unsigned low)."""
    _check_signed(iact, 8, "iact")
    a0 = iact & 0xF
    a1 = (iact - a0) >> 4  # arithmetic: carries the sign
    return a1, a0


def pe_multiply_4b(weight: int, iact: int) -> int:
    """4-bit signed weight × 8-bit signed iAct via four 4b×2b multipliers.

    Weight splits into a signed top pair ``w1`` and unsigned bottom pair
    ``w0`` (w = 4*w1 + w0); the four partial products recombine with shifts:
    ``w*a = (a1*w1)<<6 + (a1*w0)<<4 + (a0*w1)<<2 + (a0*w0)``.
    """
    _check_signed(weight, 4, "weight")
    w0 = weight & 0x3
    w1 = (weight - w0) >> 2
    a1, a0 = _split_iact(iact)
    p11 = a1 * w1
    p10 = a1 * w0
    p01 = a0 * w1
    p00 = a0 * w0
    return (p11 << 6) + (p10 << 4) + (p01 << 2) + p00


def pe_multiply_2b(w_hi: int, w_lo: int, iact: int) -> Tuple[int, int]:
    """Two independent 2-bit signed weights × shared 8-bit iAct.

    Each product uses two of the four sub-multipliers:
    ``w*a = (a1*w)<<4 + (a0*w)``.
    """
    _check_signed(w_hi, 2, "w_hi")
    _check_signed(w_lo, 2, "w_lo")
    a1, a0 = _split_iact(iact)
    res_hi = ((a1 * w_hi) << 4) + a0 * w_hi
    res_lo = ((a1 * w_lo) << 4) + a0 * w_lo
    return res_hi, res_lo


@dataclass(frozen=True)
class OutlierHalfProduct:
    """The (Res, iAcc) pair a PE emits when it holds an outlier half.

    ``kind`` is "upper" or "lower"; ``magnitude_bits`` is the number of
    mantissa bits in this half (= bb - 1), which fixes the merge shift.
    ``sign`` is the outlier's (duplicated) sign; ``iact`` rides along for
    the hidden-bit correction in the ReCoN merge.
    """

    kind: str
    res: int
    iacc: float
    sign: int
    iact: int
    magnitude_bits: int
    # Which permutation-list entry this half belongs to (ReCoN pairs the
    # halves of one outlier by this id; -1 = pair left-to-right).
    pair_id: int = -1


class MultiPrecisionPE:
    """One PE: weight register(s) + MUL and ADD stages.

    ``weights`` is a single int (MODE_4b) or a pair (MODE_2b). When
    ``outlier_half`` is set the ADD stage offloads to ReCoN by emitting an
    :class:`OutlierHalfProduct` instead of accumulating.
    """

    def __init__(
        self,
        weights: Union[int, Tuple[int, int]],
        mode: str = MODE_4B,
        outlier_half: Optional[str] = None,
        outlier_sign: int = 1,
    ):
        if mode not in (MODE_2B, MODE_4B):
            raise ValueError(f"mode must be '2b' or '4b', got {mode!r}")
        if outlier_half not in (None, "upper", "lower"):
            raise ValueError(f"bad outlier_half {outlier_half!r}")
        self.mode = mode
        self.weights = weights
        self.outlier_half = outlier_half
        self.outlier_sign = outlier_sign

    def step(self, iact: int, iacc) -> object:
        """One MAC cycle. Returns the accumulated partial sum, a pair of
        them in MODE_2b, or an :class:`OutlierHalfProduct` for offload."""
        if self.mode == MODE_4B:
            res = pe_multiply_4b(int(self.weights), iact)
            if self.outlier_half is None:
                return iacc + res
            # bb = 4: e3m4 mantissa splits into two 2-bit halves.
            return OutlierHalfProduct(
                self.outlier_half, res, iacc, self.outlier_sign, iact, 2
            )
        w_hi, w_lo = self.weights
        res_hi, res_lo = pe_multiply_2b(int(w_hi), int(w_lo), iact)
        if self.outlier_half is None:
            acc_hi, acc_lo = iacc
            return acc_hi + res_hi, acc_lo + res_lo
        # In 2-bit mode an outlier half occupies one of the packed slots;
        # the magnitude is 1 bit (bb - 1 = 1).
        return OutlierHalfProduct(self.outlier_half, res_hi, iacc, self.outlier_sign, iact, 1)
