"""Model-level quantization driver and the pipeline's job kernel.

``quantize_model`` walks every linear layer of a :class:`TransformerLM`,
collects that layer's calibration activations (from the *progressively
quantized* model, as GPTQ-style pipelines do: layer ``l`` calibrates on the
outputs of already-quantized layers ``< l``), quantizes with the requested
method, and installs the dequantized override plus activation fake-quantizer
when a weight-activation setting is requested.

``evaluate_setting`` is the self-contained experiment kernel the
:mod:`repro.pipeline` executors dispatch: build the model, quantize one
setting, evaluate perplexity (plus a bootstrap uncertainty), and return a
plain metrics dict. It rebuilds everything from its arguments and takes its
randomness from the caller-provided generator, so a given (spec, seed) pair
produces the same metrics in any process.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields as dataclass_fields
from typing import Any, Dict, Optional

import numpy as np

from ..baselines.registry import get_quantizer
from ..models.transformer import TransformerLM
from ..quant.activation import ActivationQuantizer
from .corpus import calibration_tokens

__all__ = ["QuantizationReport", "evaluate_setting", "quantize_model"]

# Methods whose signature accepts act_bits (they manage their own migration).
_ACT_AWARE = {"smoothquant", "omniquant", "atom", "microscopiq", "omni-microscopiq"}


@dataclass
class QuantizationReport:
    """What happened when a model was quantized."""

    method: str
    w_bits: int
    act_bits: Optional[int]
    layer_ebw: Dict[str, float] = field(default_factory=dict)
    layer_meta: Dict[str, dict] = field(default_factory=dict)

    @property
    def mean_ebw(self) -> float:
        vals = list(self.layer_ebw.values())
        return float(np.mean(vals)) if vals else 0.0


def quantize_model(
    model,
    method: str,
    w_bits: int,
    act_bits: Optional[int] = None,
    calib=None,
    **quantizer_kwargs,
) -> QuantizationReport:
    """Quantize every linear of ``model`` in place (via overrides).

    ``model`` is anything implementing the quantization protocol
    (``linear_names``, ``weights``, ``collect_calibration``,
    ``set_override``, ``act_quant``, ``clear_overrides``) — the
    transformer LM, VLM, CNN, and SSM substrates all do. Re-entrant:
    clears any previous overrides first. For LMs, ``calib`` defaults to
    the family's standard calibration token set; other substrates must
    pass their own calibration inputs.
    """
    model.clear_overrides()
    quantizer = get_quantizer(method)
    if calib is None:
        if not isinstance(model, TransformerLM):
            raise ValueError(
                f"{type(model).__name__} has no default calibration set; pass calib="
            )
        calib = calibration_tokens(model)
    report = QuantizationReport(method, w_bits, act_bits)

    for name in model.linear_names:
        # Calibration activations reflect already-installed overrides of
        # earlier layers (sequential PTQ).
        acts = model.collect_calibration(calib)[name]
        w = model.weights[name]
        kwargs = dict(quantizer_kwargs)
        if act_bits is not None and method in _ACT_AWARE:
            kwargs["act_bits"] = act_bits
        result = quantizer(w, acts, bits=w_bits, **kwargs)
        model.set_override(name, result.dequant)
        act_q = result.meta.get("act_quantizer")
        if act_bits is not None and act_q is None:
            act_q = ActivationQuantizer(None, act_bits)
        if act_q is not None:
            model.act_quant[name] = act_q
        report.layer_ebw[name] = result.ebw
        report.layer_meta[name] = {
            k: v for k, v in result.meta.items() if isinstance(v, (int, float, str))
        }
    return report


_FP_METHOD = "fp16"
_BOOTSTRAP_RESAMPLES = 64


def _split_quant_kwargs(method: str, quant_kwargs: Dict[str, Any], w_bits: int):
    """Turn flat, JSON-able job kwargs into quantizer call kwargs.

    MicroScopiQ's knobs live on :class:`~repro.quant.MicroScopiQConfig`, so
    config-field names are folded into a ``config=`` object; every other
    method takes its keywords directly (``group_size=…``, ``damp_ratio=…``).
    """
    from ..quant.config import MicroScopiQConfig

    config_fields = {f.name for f in dataclass_fields(MicroScopiQConfig)}
    cfg_kw = {k: v for k, v in quant_kwargs.items() if k in config_fields}
    passthrough = {k: v for k, v in quant_kwargs.items() if k not in config_fields}
    if method in ("microscopiq", "omni-microscopiq") and cfg_kw:
        cfg_kw.setdefault("inlier_bits", w_bits)
        passthrough["config"] = MicroScopiQConfig(**cfg_kw)
    elif cfg_kw:
        raise ValueError(
            f"method {method!r} does not take MicroScopiQConfig fields: "
            f"{sorted(cfg_kw)}"
        )
    return passthrough


def evaluate_setting(
    family: str,
    method: str = _FP_METHOD,
    w_bits: int = 4,
    act_bits: Optional[int] = None,
    quant_kwargs: Optional[Dict[str, Any]] = None,
    kv_bits: Optional[int] = None,
    kv_residual: int = 128,
    eval_sequences: int = 32,
    eval_seq_len: int = 32,
    rng: Optional[np.random.Generator] = None,
) -> Dict[str, Any]:
    """Quantize one (family × method × setting) and evaluate it end to end.

    This is the pipeline's job kernel: a pure function of its arguments.
    ``rng`` is the only randomness source (the pipeline spawns it from the
    job's content hash); it currently drives the bootstrap resampling of the
    perplexity uncertainty, and any future stochastic step must draw from it
    too so parallel and serial sweeps stay bit-identical.

    Returns a JSON-serializable dict: ``ppl``, ``nll``, ``nll_se`` (bootstrap
    standard error over evaluation sequences), and ``mean_ebw`` (quantized
    runs). Deliberately no wall times here — metrics must be a deterministic
    function of the job so executors can be compared bit-for-bit; timing
    lives on the executor's :class:`~repro.pipeline.executor.JobOutcome`.
    """
    from ..models.transformer import build_model
    from ..quant.activation import quantize_kv_cache
    from .corpus import eval_corpus
    from .perplexity import nll_per_sequence

    rng = rng if rng is not None else np.random.default_rng(0)
    model = build_model(family)
    corpus = eval_corpus(model, eval_sequences, eval_seq_len)
    metrics: Dict[str, Any] = {"family": family, "method": method}

    if method != _FP_METHOD:
        kwargs = _split_quant_kwargs(method, dict(quant_kwargs or {}), w_bits)
        report = quantize_model(model, method, w_bits, act_bits=act_bits, **kwargs)
        metrics["w_bits"] = w_bits
        metrics["act_bits"] = act_bits
        metrics["mean_ebw"] = report.mean_ebw

    if kv_bits is not None:
        model.kv_quant = lambda k, v: quantize_kv_cache(
            k, v, bits=kv_bits, residual=kv_residual
        )

    seq_nll = nll_per_sequence(model, corpus)
    metrics["nll"] = float(np.mean(seq_nll))
    metrics["ppl"] = float(np.exp(metrics["nll"]))
    resamples = rng.integers(0, len(seq_nll), size=(_BOOTSTRAP_RESAMPLES, len(seq_nll)))
    metrics["nll_se"] = float(np.std(np.mean(seq_nll[resamples], axis=1)))

    model.clear_overrides()
    return metrics
