"""ProgressTracker behavior: counters, ticker rate-limiting, failure lines.

The tracker is the sweep's only user-facing feedback channel, so its edge
cases matter: a tight cache-hit loop must not flood the terminal, a failing
job must surface its label and error class *immediately* (not after the
sweep), and ``summary()`` must attribute warm-sweep time to ``lookup_s``
instead of reporting a thousand cache hits as free.
"""

from __future__ import annotations

import io

from repro.pipeline.progress import ProgressTracker, default_stream


def _lines(stream: io.StringIO):
    """Ticker output split into rendered lines (the ticker uses ``\\r``)."""
    return [s.strip() for s in stream.getvalue().replace("\r", "\n").split("\n") if s.strip()]


class TestCounters:
    def test_computed_vs_cached_attribution(self):
        t = ProgressTracker(total=4)
        t.update(from_cache=False, seconds=1.5)
        t.update(from_cache=False, seconds=0.5)
        t.update(from_cache=True, seconds=0.01)
        t.update(from_cache=True, seconds=0.02, ok=False)
        assert (t.done, t.computed, t.cache_hits, t.failures) == (4, 2, 2, 1)
        assert t.compute_seconds == 2.0
        assert abs(t.lookup_seconds - 0.03) < 1e-12
        assert t.hit_rate == 0.5

    def test_summary_fields(self):
        t = ProgressTracker(total=2)
        t.update(from_cache=False, seconds=0.25)
        t.update(from_cache=True, seconds=0.125)
        s = t.summary()
        assert s["total"] == 2 and s["done"] == 2
        assert s["computed"] == 1 and s["cache_hits"] == 1
        assert s["compute_s"] == 0.25
        assert s["lookup_s"] == 0.125
        assert s["failures"] == 0
        assert s["elapsed_s"] >= 0 and s["jobs_per_s"] >= 0
        assert s["hit_rate"] == 0.5

    def test_empty_tracker_summary(self):
        s = ProgressTracker(total=0).summary()
        assert s["done"] == 0 and s["hit_rate"] == 0.0 and s["lookup_s"] == 0.0


class TestTicker:
    def test_rate_limit_suppresses_intermediate_lines(self):
        stream = io.StringIO()
        t = ProgressTracker(total=100, stream=stream, min_interval=3600.0)
        for _ in range(99):
            t.update(from_cache=True, seconds=0.0)
        # 99 sub-interval updates → at most one ticker line.
        assert len(_lines(stream)) <= 1
        t.update(from_cache=True, seconds=0.0)
        # The completing update bypasses the rate limit.
        lines = _lines(stream)
        assert lines[-1].startswith("[100/100]")
        assert len(lines) <= 2

    def test_zero_interval_prints_every_update(self):
        stream = io.StringIO()
        t = ProgressTracker(total=3, stream=stream, min_interval=0.0)
        for _ in range(3):
            t.update(from_cache=False, seconds=0.0)
        assert len(_lines(stream)) == 3

    def test_no_stream_is_silent_noop(self):
        t = ProgressTracker(total=1)  # stream=None
        t.update(from_cache=False, ok=False, label="x")  # must not raise
        assert t.failures == 1

    def test_finish_forces_final_line_and_returns_summary(self):
        stream = io.StringIO()
        t = ProgressTracker(total=5, stream=stream, min_interval=3600.0)
        t.update(from_cache=True)
        t.update(from_cache=True)
        summary = t.finish()
        # elapsed_s/jobs_per_s recompute live; the counter fields are stable.
        for key in ("total", "done", "computed", "cache_hits", "failures",
                    "compute_s", "lookup_s", "hit_rate"):
            assert summary[key] == t.summary()[key]
        # finish() must render even though the interval hasn't elapsed and
        # the sweep is incomplete (the runner calls it on early exit too).
        assert _lines(stream)[-1].startswith("[2/5]")

    def test_ticker_shows_label(self):
        stream = io.StringIO()
        t = ProgressTracker(total=1, stream=stream, min_interval=0.0)
        t.update(from_cache=False, label="opt-6.7b/rtn W4A16")
        assert "opt-6.7b/rtn W4A16" in _lines(stream)[-1]


class TestFailureReporting:
    def test_failure_prints_label_and_error_class_immediately(self):
        stream = io.StringIO()
        # Interval high enough that an ordinary ticker line cannot sneak in.
        t = ProgressTracker(total=100, stream=stream, min_interval=3600.0)
        t.update(from_cache=True)  # consumes the first (always-printed) tick
        t.update(
            from_cache=False, ok=False,
            label="opt-6.7b/rtn W3A16", error_type="ValueError",
        )
        lines = _lines(stream)
        failed = [s for s in lines if s.startswith("FAILED")]
        assert failed == ["FAILED opt-6.7b/rtn W3A16 (ValueError)"]

    def test_failure_without_label_or_type_still_readable(self):
        stream = io.StringIO()
        t = ProgressTracker(total=2, stream=stream, min_interval=3600.0)
        t.update(from_cache=True)
        t.update(from_cache=False, ok=False)
        assert "FAILED <unlabeled job> (Error)" in _lines(stream)

    def test_rate_limited_cache_storm_cannot_hide_failure(self):
        stream = io.StringIO()
        t = ProgressTracker(total=1000, stream=stream, min_interval=3600.0)
        for _ in range(500):
            t.update(from_cache=True)
        t.update(from_cache=False, ok=False, label="bad", error_type="OSError")
        for _ in range(499):
            t.update(from_cache=True)
        lines = _lines(stream)
        assert any(s.startswith("FAILED bad (OSError)") for s in lines)
        # ...while the storm itself stayed rate-limited: first tick, the
        # failure line + its tick is suppressed (sub-interval), final tick.
        assert len(lines) <= 4
