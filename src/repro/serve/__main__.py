"""``python -m repro.serve`` — start the sweep service daemon."""

from .server import main

if __name__ == "__main__":
    raise SystemExit(main())
