"""``repro-dist``: the coordinator/worker pair as console subcommands.

A two-host fleet is three shells::

    host-a$ repro-dist coordinator --cache-dir .repro-cache
    host-a$ repro-dist worker --coordinator http://127.0.0.1:8643
    host-b$ REPRO_SERVE_TOKEN=… repro-dist worker --coordinator http://host-a:8643

after which any submitter runs ``repro-sweep run … --executor remote
--coordinator http://host-a:8643`` (or sets ``REPRO_DIST_URL``).
"""

from __future__ import annotations

import argparse
import os
from typing import List, Optional

from .. import __version__
from . import coordinator as coordinator_mod
from .client import DEFAULT_COORDINATOR, CoordinatorClient
from .remote import DIST_URL_ENV
from .worker import DistWorker

__all__ = ["main"]


def _worker_main(args: argparse.Namespace) -> int:
    url = args.coordinator or os.environ.get(DIST_URL_ENV) or DEFAULT_COORDINATOR
    client = CoordinatorClient(url, timeout=args.timeout)
    worker = DistWorker(client, worker_id=args.worker_id, poll=args.poll)
    print(f"repro-dist worker {worker.worker_id} pulling from {url}")
    try:
        executed = worker.run_forever(
            max_jobs=args.max_jobs, max_idle_s=args.max_idle_s, quiet=args.quiet
        )
    except KeyboardInterrupt:
        executed = worker.tasks_run
    print(f"repro-dist worker {worker.worker_id}: {executed} task(s) executed")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-dist",
        description="Multi-host work-stealing execution for repro sweeps.",
    )
    parser.add_argument(
        "--version", action="version", version=f"%(prog)s {__version__}"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser(
        "coordinator",
        add_help=False,  # the coordinator owns its own argparse + help
        help="run the fleet coordinator (queue + claims + blob relay)",
    )

    worker = sub.add_parser("worker", help="run one pull/execute/push worker")
    worker.add_argument(
        "--coordinator", default="",
        help=f"coordinator URL (default: ${DIST_URL_ENV} or {DEFAULT_COORDINATOR})",
    )
    worker.add_argument(
        "--worker-id", default="",
        help="fleet-wide identity (default: <hostname>:pid-<pid>)",
    )
    worker.add_argument("--poll", type=float, default=0.2,
                        help="seconds between pulls when the queue is empty")
    worker.add_argument("--timeout", type=float, default=60.0,
                        help="per-request HTTP timeout")
    worker.add_argument("--max-jobs", type=int, default=None,
                        help="exit after this many tasks (default: run forever)")
    worker.add_argument("--max-idle-s", type=float, default=None,
                        help="exit after this long with an empty queue")
    worker.add_argument("--quiet", action="store_true",
                        help="suppress per-task lines")

    args, rest = parser.parse_known_args(argv)
    if args.command == "coordinator":
        return coordinator_mod.main(rest)
    if rest:
        parser.error(f"unrecognized arguments: {' '.join(rest)}")
    return _worker_main(args)


if __name__ == "__main__":
    raise SystemExit(main())
