"""GPTQ [Frantar et al. 2022]: RTN + sequential OBS error compensation.

Columns quantize left-to-right; each column's rounding error is pushed onto
not-yet-quantized columns via the inverse-Hessian Cholesky factor. Group
scales (float, per 128 columns) are recomputed from the *updated* weights at
each group boundary.
"""

from __future__ import annotations

import numpy as np

from ..methods.resources import HessianBundle
from ..quant.kernel import BlockQuantKernel
from ..quant.vector import resolve_kernel_path
from .base import BaselineResult, group_float_scale

__all__ = ["quantize_gptq", "gptq_core"]


def gptq_core(
    weights: np.ndarray,
    hessian: np.ndarray | HessianBundle,
    bits_per_col: np.ndarray,
    group_size: int = 128,
    clip_ratio: float = 1.0,
    kernel_path: str | None = None,
) -> np.ndarray:
    """Column-sequential GPTQ supporting a per-column bit-width.

    ``bits_per_col [d_in]`` lets Atom-style mixed-precision reuse the same
    engine (outlier channels at 8 bits, the rest at 4). Group scales (float,
    per ``group_size`` columns) are recomputed from the *updated* weights at
    each group boundary; error propagation is the shared OBS stage on
    :class:`BlockQuantKernel` (single-column blocks = plain GPTQ).

    ``hessian`` is a raw damped ``H`` or a
    :class:`~repro.methods.resources.HessianBundle`; passing the bundle lets
    a multi-setting sweep reuse one Cholesky factorization instead of
    re-inverting ``H`` per setting.

    ``kernel_path`` (default: :func:`~repro.quant.vector.resolve_kernel_path`)
    selects the implementation. GPTQ recomputes *float* group scales from the
    updated weights at every boundary, so any lazy-batch (GEMM) deferral of
    the trailing updates reassociates their summation and perturbs the next
    group's scale in the last ulp — unlike MicroScopiQ's fixed power-of-two
    scales, that is observable. The ``"vector"`` path therefore keeps the
    exact per-column update order and only strips the per-column
    stage-dispatch overhead (the working-copy allocation per
    ``propagate_block_error`` call); its wins come from the engine's
    row-stacked shape batching, which is exactly row-independent. Both paths
    are bit-identical — asserted against the golden snapshots.
    """
    w = np.array(weights, dtype=np.float64)
    d_out, d_in = w.shape
    u = HessianBundle.wrap(hessian).u_factor
    q = np.zeros_like(w)
    kernel = BlockQuantKernel(group_size, detect_outliers=False)
    vector = resolve_kernel_path(kernel_path) == "vector"
    for lo, hi in kernel.blocks(d_in):
        group_bits = int(bits_per_col[lo])
        scale = group_float_scale(w[:, lo:hi], group_bits, clip_ratio)[:, 0]
        for p in range(lo, hi):
            bits = int(bits_per_col[p])
            maxq = 2 ** (bits - 1) - 1
            # A column with more bits than the group reference keeps the group
            # scale but uses its own wider clip range.
            col_scale = scale * (2 ** (group_bits - 1) - 1) / maxq if bits != group_bits else scale
            q[:, p] = np.clip(np.rint(w[:, p] / col_scale), -maxq, maxq) * col_scale
            if vector:
                # Inlined single-column OBS update: identical float ops to
                # propagate_block_error(w, q, u, p, p+1), minus its
                # working-copy/slice machinery.
                err = (w[:, p] - q[:, p]) / u[p, p]
                if p + 1 < d_in:
                    w[:, p + 1 :] -= np.outer(err, u[p, p + 1 :])
            else:
                kernel.propagate_block_error(w, q, u, p, p + 1)
    return q


def quantize_gptq(
    weights: np.ndarray,
    calib_inputs: np.ndarray | None = None,
    bits: int = 4,
    group_size: int = 128,
    damp_ratio: float = 0.01,
    hessian: np.ndarray | HessianBundle | None = None,
) -> BaselineResult:
    """Uniform-precision GPTQ. Falls back to RTN math if no calibration.

    A precomputed ``hessian`` — a raw ``H`` or the engine-provided
    :class:`~repro.methods.resources.HessianBundle` — skips the ``X^T X``
    build (and, for a bundle, the inversion/factorization too).
    """
    w = np.asarray(weights, dtype=np.float64)
    d_in = w.shape[1]
    if hessian is None:
        if calib_inputs is None:
            bundle = HessianBundle(h=np.eye(d_in))
        else:
            bundle = HessianBundle(calib_inputs, damp_ratio)
    else:
        bundle = HessianBundle.wrap(hessian)
    bits_per_col = np.full(d_in, bits, dtype=np.int32)
    dq = gptq_core(w, bundle, bits_per_col, group_size)
    return BaselineResult("gptq", dq, float(bits), {"group_size": group_size})
