"""Table 8: Omni-MicroScopiQ (LWC + LET) vs plain OmniQuant.

Paper shape: Omni-MicroScopiQ < OmniQuant at every setting (up to 22%
lower PPL), and also improves on plain MicroScopiQ."""

import pytest

from benchmarks.conftest import print_table

FAMILIES = ["llama2-13b", "phi3-3.8b"]
SETTINGS = [("W4A16", 4, None), ("W2A16", 2, None), ("W2A8", 2, 8)]


def compute(ppl_cache):
    table = {}
    for fam in FAMILIES:
        table[(fam, "fp")] = ppl_cache.fp_ppl(fam)
        for name, wb, ab in SETTINGS:
            for method in ("omniquant", "microscopiq", "omni-microscopiq"):
                table[(fam, name, method)] = ppl_cache.ppl(fam, method, wb, ab)
    return table


@pytest.mark.benchmark(group="table8")
def test_table8_omni_microscopiq(benchmark, ppl_cache):
    table = benchmark.pedantic(compute, args=(ppl_cache,), rounds=1, iterations=1)
    rows = []
    for fam in FAMILIES:
        for name, _wb, _ab in SETTINGS:
            rows.append(
                [
                    fam,
                    name,
                    f"{table[(fam, 'fp')]:.2f}",
                    f"{table[(fam, name, 'omniquant')]:.2f}",
                    f"{table[(fam, name, 'microscopiq')]:.2f}",
                    f"{table[(fam, name, 'omni-microscopiq')]:.2f}",
                ]
            )
    print_table(
        "Table 8 — OmniQuant vs MicroScopiQ vs Omni-MicroScopiQ (PPL)",
        ["model", "setting", "fp16", "omniquant", "microscopiq", "omni-ms"],
        rows,
    )
    for fam in FAMILIES:
        for name, _wb, _ab in SETTINGS:
            omni_ms = table[(fam, name, "omni-microscopiq")]
            assert omni_ms < table[(fam, name, "omniquant")]
            assert omni_ms <= table[(fam, name, "microscopiq")] * 1.05
