"""Shared quantization resources: lazy Hessian factor bundles and their store.

The layer Hessian ``H = 2 X Xᵀ + λI`` and everything derived from it — the
inverse, its diagonal (OBS pruning saliency), and the upper Cholesky factor
of the inverse (GPTQ error compensation) — depend only on the calibration
activations and the damping, never on the bit setting or method knobs. A
:class:`HessianBundle` therefore owns one (activations, λ) fingerprint and
computes each factor **lazily, exactly once**: a sweep that quantizes the
same layer at W4 and then W2 pays the O(d³) inversion a single time, where
the pre-bundle code re-inverted per setting.

The :class:`HessianStore` memoizes bundles by content fingerprint with two
tiers:

* an in-process LRU (thread-safe; concurrent requests for one fingerprint
  coalesce on the bundle's own lock, so a wq/wk/wv group dispatched in
  parallel builds its shared ``H`` once);
* an optional **content-addressed disk tier** (``<root>/<hh>/<fp>.npz``
  blobs, written atomically) so process-pool sweeps stop recomputing
  Hessians per worker: the first worker to build an ``H`` persists it, every
  other worker — and every later *process* — loads the blob instead of
  re-running the O(n·d²) ``XᵀX`` build. The blob holds the *factors* too:
  ``hinv_diag`` and the Cholesky ``u_factor`` are appended (under
  version-tagged keys) as they are first computed, so a genuinely fresh
  process pays zero O(d³) inversions for fingerprints an earlier run
  factorized. Partial or corrupt blobs degrade gracefully — whatever loads
  is used, the rest recomputes from the activations. ``hits`` /
  ``disk_hits`` / ``misses`` counters make the reuse assertable.

:func:`default_hessian_store` returns the process-wide store; its disk tier
attaches from the ``REPRO_HESSIAN_DIR`` environment variable, which the
sweep runner sets (next to the ``ResultCache``) before spawning workers so
the whole pool shares one tier without any pickled plumbing.
"""

from __future__ import annotations

import hashlib
import os
import tempfile
import threading
import zipfile
from collections import OrderedDict
from pathlib import Path
from typing import Optional, Union

import numpy as np

from ..obs.metrics import METRICS

__all__ = [
    "HESSIAN_DIR_ENV",
    "HessianBundle",
    "HessianStore",
    "default_hessian_store",
]

HESSIAN_DIR_ENV = "REPRO_HESSIAN_DIR"

# Disk-blob schema: factor arrays live under version-tagged keys
# ("v1:h", ...) so a future numerics change can bump the tag and old blobs
# fall through to recompute instead of silently poisoning results.
_BLOB_VERSION = 1
_BLOB_FACTORS = ("h", "hinv_diag", "u_factor")


def _blob_key(factor: str) -> str:
    return f"v{_BLOB_VERSION}:{factor}"


class HessianBundle:
    """Lazily-computed Hessian and factors for one (activations, λ) pair.

    Factors cascade: ``h`` → ``hinv`` → ``hinv_diag`` / ``u_factor``. Each is
    computed on first access, under the bundle lock, and cached forever; the
    ``h_builds`` / ``inversions`` / ``factorizations`` counters record what
    was actually computed so sweeps can assert reuse. The bundle is what the
    method API's ``prepare`` step hands to Hessian-aware quantizers in place
    of a raw ``H`` matrix.
    """

    def __init__(
        self,
        acts: Optional[np.ndarray] = None,
        damp_ratio: float = 0.01,
        h: Optional[np.ndarray] = None,
        persist=None,
    ):
        """``persist`` is called with the bundle whenever a persistable
        factor is first *computed*, so the store's disk tier accumulates
        factors as they come into existence.

        Memory contract: ``acts`` is held only as the raw material for a
        future ``H`` build and is dropped the moment ``h`` materializes —
        a store full of bundles must not pin every layer's ``[n, d_in]``
        calibration matrix for the life of the LRU."""
        if acts is None and h is None:
            raise ValueError("HessianBundle needs activations or a Hessian")
        self.acts = acts if h is None else None
        self.damp_ratio = float(damp_ratio)
        self._h = h
        self._hinv: Optional[np.ndarray] = None
        self._hinv_diag: Optional[np.ndarray] = None
        self._u: Optional[np.ndarray] = None
        self._persist = persist
        self._lock = threading.RLock()
        self.h_builds = 0
        self.inversions = 0
        self.factorizations = 0

    @classmethod
    def wrap(cls, hessian: Union[np.ndarray, HessianBundle]) -> HessianBundle:
        """Adapt a raw ``H`` matrix (the legacy ``hessian=`` contract) into a
        bundle; bundles pass through untouched."""
        if isinstance(hessian, HessianBundle):
            return hessian
        return cls(h=np.asarray(hessian))

    @classmethod
    def from_factors(
        cls, factors: dict, damp_ratio: float, persist=None
    ) -> HessianBundle:
        """A bundle over disk-tier factors (``h`` required, ``hinv_diag`` /
        ``u_factor`` optional) — never holds the calibration activations."""
        made = cls(h=factors["h"], damp_ratio=damp_ratio, persist=persist)
        made._hinv_diag = factors.get("hinv_diag")
        made._u = factors.get("u_factor")
        return made

    # ----------------------------------------------------------- lazy factors
    def _persist_now(self) -> None:
        if self._persist is not None:
            self._persist(self)

    def persisted_factors(self) -> dict:
        """The currently-computed factors worth writing to the disk tier."""
        with self._lock:
            out = {}
            for name, value in (
                ("h", self._h),
                ("hinv_diag", self._hinv_diag),
                ("u_factor", self._u),
            ):
                if value is not None:
                    out[name] = value
            return out

    @property
    def h(self) -> np.ndarray:
        """The damped layer Hessian, built on first access."""
        with self._lock:
            if self._h is None:
                from ..quant.hessian import layer_hessian

                self._h = layer_hessian(self.acts, self.damp_ratio)
                self.h_builds += 1
                METRICS.incr("hessian.store.h_builds")
                self._persist_now()
                # H is all any factor needs from here on; dropping the
                # activation reference keeps a store full of bundles from
                # pinning every layer's [n, d_in] calibration matrix.
                self.acts = None
            return self._h

    @property
    def h_diag(self) -> np.ndarray:
        """``diag(H)`` — the LWC column-importance weights."""
        return np.diag(self.h)

    @property
    def hinv(self) -> np.ndarray:
        """``H⁻¹`` (symmetrized), inverted exactly once per bundle."""
        with self._lock:
            if self._hinv is None:
                from ..quant.hessian import inverse_hessian

                self._hinv = inverse_hessian(self.h)
                self.inversions += 1
                METRICS.incr("hessian.store.inversions")
            return self._hinv

    @property
    def hinv_diag(self) -> np.ndarray:
        """``diag(H⁻¹)`` — the OBS pruning-saliency denominators."""
        with self._lock:
            if self._hinv_diag is None:
                self._hinv_diag = np.diag(self.hinv).copy()
                self._persist_now()
            return self._hinv_diag

    @property
    def u_factor(self) -> np.ndarray:
        """Upper Cholesky factor ``U`` with ``H⁻¹ = UᵀU`` (GPTQ's form)."""
        with self._lock:
            if self._u is None:
                low = np.linalg.cholesky(self.hinv)
                self._u = np.ascontiguousarray(low.T)
                self.factorizations += 1
                METRICS.incr("hessian.store.factorizations")
                self._persist_now()
            return self._u

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        have = [
            name
            for name, v in (("h", self._h), ("hinv", self._hinv), ("u", self._u))
            if v is not None
        ]
        return f"HessianBundle(damp={self.damp_ratio}, computed={'+'.join(have) or 'nothing'})"


class HessianStore:
    """Content-fingerprinted, LRU-bounded memo of per-layer Hessian bundles.

    Keys are a SHA-256 over the raw calibration activations plus the damping
    ratio, so the store is safe to share across layers, settings, and whole
    sweeps: identical activations → identical bundle, regardless of which
    (method × bits) setting asked for it. ``bundle`` is the primary API;
    ``hessian`` keeps the legacy raw-``H`` contract. Thread-safe: the store
    lock only guards the (cheap) get-or-create, while the O(n·d²)/O(d³)
    computation runs under the bundle's own lock, which is what coalesces a
    thread-dispatched wq/wk/wv group onto one ``XᵀX`` build.

    With ``disk_root`` set, every freshly built ``H`` is persisted as a
    content-addressed ``.npz`` blob — and the expensive factors
    (``hinv_diag``, the Cholesky ``u_factor``) are appended to it as they
    are first computed — so later stores, including ones in *other
    processes*, resolve the fingerprint from disk (``disk_hits``) instead of
    recomputing (``misses``) and pay zero O(d³) factorizations for
    fingerprints an earlier run already factorized.
    """

    def __init__(self, max_entries: int = 64, disk_root: Optional[os.PathLike] = None):
        self.max_entries = int(max_entries)
        self.disk_root = Path(disk_root) if disk_root is not None else None
        self._data: OrderedDict[str, HessianBundle] = OrderedDict()
        # Reentrant: a corrupt-blob load inside `bundle` re-classifies the
        # hit/miss counters under this same lock.
        self._lock = threading.RLock()
        self.hits = 0
        self.disk_hits = 0
        self.misses = 0

    def set_disk_root(self, target: Optional[os.PathLike]) -> None:
        """Attach or re-target the disk tier (thread-safe).

        ``default_hessian_store`` re-reads ``REPRO_HESSIAN_DIR`` on every
        call, possibly from concurrent worker threads; the retarget must not
        race a ``bundle()`` lookup resolving blob paths.
        """
        target = Path(target) if target is not None else None
        with self._lock:
            self.disk_root = target

    @staticmethod
    def fingerprint(acts: np.ndarray, damp_ratio: float) -> str:
        h = hashlib.sha256()
        h.update(np.ascontiguousarray(acts).tobytes())
        h.update(repr((acts.shape, acts.dtype.str, float(damp_ratio))).encode())
        return h.hexdigest()

    # ------------------------------------------------------------- disk tier
    def _blob_path(self, key: str) -> Optional[Path]:
        if self.disk_root is None:
            return None
        return self.disk_root / key[:2] / f"{key}.npz"

    def _legacy_blob_path(self, key: str) -> Optional[Path]:
        """Pre-factor-tier blobs (raw ``H`` as ``.npy``) stay readable."""
        if self.disk_root is None:
            return None
        return self.disk_root / key[:2] / f"{key}.npy"

    def _disk_loader(self, key: str):
        """A factor-dict loader for an on-disk blob; ``None`` if absent.

        The blob is an ``.npz`` of version-tagged factor arrays; whatever
        subset is present (and loads cleanly) is returned. A blob that
        exists but fails to load — truncated write, version skew, foreign
        bytes — re-classifies the earlier ``disk_hits`` count as a miss, so
        the counters always report what actually happened, not what the
        directory listing promised.
        """
        path = self._blob_path(key)
        legacy = self._legacy_blob_path(key)
        use_legacy = False
        if path is None or not path.is_file():
            if legacy is None or not legacy.is_file():
                return None
            use_legacy = True

        def load() -> Optional[dict]:
            try:
                if use_legacy:
                    return {"h": np.load(legacy)}
                with np.load(path) as blob:
                    loaded = {
                        factor: blob[_blob_key(factor)]
                        for factor in _BLOB_FACTORS
                        if _blob_key(factor) in blob.files
                    }
                if "h" not in loaded:  # unknown schema version: treat as miss
                    raise ValueError(f"no {_blob_key('h')} array in {path.name}")
                return loaded
            except (OSError, ValueError, KeyError, zipfile.BadZipFile):
                with self._lock:  # corrupt blob: that "hit" was really a miss
                    self.disk_hits -= 1
                    self.misses += 1
                    METRICS.incr("hessian.store.disk_hits", -1)
                    METRICS.incr("hessian.store.misses")
                return None  # fall through to rebuild from activations

        return load

    def _disk_writer(self, key: str):
        """A callback persisting a bundle's computed factors; ``None`` if no
        tier. Called again as new factors appear; each write atomically
        replaces the blob with the fuller factor set."""
        path = self._blob_path(key)
        if path is None:
            return None

        def write(bundle: HessianBundle) -> None:
            factors = bundle.persisted_factors()
            if "h" not in factors:
                return
            try:
                path.parent.mkdir(parents=True, exist_ok=True)
                fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
                try:
                    with os.fdopen(fd, "wb") as f:
                        np.savez(f, **{_blob_key(k): v for k, v in factors.items()})
                    os.replace(tmp, path)
                except BaseException:
                    try:
                        os.unlink(tmp)
                    except OSError:
                        pass
                    raise
            except OSError:
                pass  # a read-only or full disk never fails the sweep

        return write

    # ----------------------------------------------------------------- reads
    def bundle(self, acts: np.ndarray, damp_ratio: float) -> HessianBundle:
        """The (cached) factor bundle for these activations + damping.

        A disk-tier blob is resolved *eagerly* here: a bundle served from
        disk is built over the loaded factors and never references ``acts``,
        so a store full of disk-hit bundles pins no calibration matrices
        (bundles that must build ``H`` themselves hold ``acts`` only until
        the first build — see :class:`HessianBundle`). Only a corrupt blob
        falls back to an activation-holding bundle, with the counters
        re-classified at that point.
        """
        key = self.fingerprint(acts, damp_ratio)
        with self._lock:
            found = self._data.get(key)
            if found is not None:
                self.hits += 1
                METRICS.incr("hessian.store.hits")
                self._data.move_to_end(key)
                return found
            loader = self._disk_loader(key)
            loaded = None
            if loader is not None:
                self.disk_hits += 1
                METRICS.incr("hessian.store.disk_hits")
                loaded = loader()  # a failure re-classifies the hit as a miss
            else:
                self.misses += 1
                METRICS.incr("hessian.store.misses")
            if loaded is not None:
                made = HessianBundle.from_factors(
                    loaded, damp_ratio, persist=self._disk_writer(key)
                )
            else:
                made = HessianBundle(
                    acts, damp_ratio, persist=self._disk_writer(key)
                )
            self._data[key] = made
            while len(self._data) > self.max_entries:
                self._data.popitem(last=False)
            return made

    def hessian(self, acts: np.ndarray, damp_ratio: float) -> np.ndarray:
        """The (cached) damped layer Hessian of ``acts`` (legacy raw form)."""
        return self.bundle(acts, damp_ratio).h

    @classmethod
    def clean_disk(cls, disk_root: os.PathLike, older_than: Optional[float] = None) -> int:
        """Delete tier blobs under ``disk_root`` (all, or only ones older
        than ``older_than`` seconds); empty shard dirs go too. The layout
        knowledge stays here, beside :meth:`_blob_path`. Returns the number
        of blobs removed."""
        import time

        root = Path(disk_root)
        removed = 0
        # Maintenance-only age policy; never runs inside execute_job.
        now = time.time()  # repro-lint: ignore[det-wallclock]
        for blob in [*root.glob("??/*.npz"), *root.glob("??/*.npy")]:
            try:
                if older_than is not None and now - blob.stat().st_mtime < older_than:
                    continue
                blob.unlink()
                removed += 1
            except OSError:
                pass
        for shard in root.glob("??"):
            try:
                shard.rmdir()  # only succeeds when empty
            except OSError:
                pass
        return removed

    # -------------------------------------------------------------- counters
    @property
    def inversions(self) -> int:
        """Total ``H⁻¹`` computations across the store's live bundles."""
        with self._lock:
            return sum(b.inversions for b in self._data.values())

    @property
    def factorizations(self) -> int:
        """Total Cholesky factorizations across the store's live bundles."""
        with self._lock:
            return sum(b.factorizations for b in self._data.values())

    def clear(self) -> None:
        with self._lock:
            self._data.clear()
            self.hits = 0
            self.disk_hits = 0
            self.misses = 0

    def __len__(self) -> int:
        return len(self._data)


_DEFAULT_STORE = HessianStore()


def default_hessian_store() -> HessianStore:
    """The process-wide store shared by all in-process jobs of a sweep.

    The disk tier attaches (or re-targets) from ``REPRO_HESSIAN_DIR`` on
    every call: the sweep runner exports the variable before spawning its
    worker pool, so forked/spawned workers inherit the tier through the
    environment with no pickled state.
    """
    env = os.environ.get(HESSIAN_DIR_ENV)
    target = Path(env) if env else None
    if _DEFAULT_STORE.disk_root != target:
        _DEFAULT_STORE.set_disk_root(target)
    return _DEFAULT_STORE
