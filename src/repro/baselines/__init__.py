"""Baseline quantizers the paper compares against (plus adapters)."""

from .atom import quantize_atom
from .awq import quantize_awq
from .base import BaselineResult, group_float_scale, rtn_group_quantize
from .gobo import quantize_gobo
from .gptq import gptq_core, quantize_gptq
from .microscopiq_adapter import quantize_microscopiq_baseline, quantize_omni_microscopiq
from .olive import quantize_olive
from .omniquant import quantize_omniquant
from .registry import QUANTIZERS, get_quantizer
from .rtn import quantize_rtn
from .sdq import quantize_sdq
from .smoothquant import quantize_smoothquant

__all__ = [
    "QUANTIZERS",
    "BaselineResult",
    "get_quantizer",
    "gptq_core",
    "group_float_scale",
    "quantize_atom",
    "quantize_awq",
    "quantize_gobo",
    "quantize_gptq",
    "quantize_microscopiq_baseline",
    "quantize_olive",
    "quantize_omni_microscopiq",
    "quantize_omniquant",
    "quantize_rtn",
    "quantize_sdq",
    "quantize_smoothquant",
    "rtn_group_quantize",
]
