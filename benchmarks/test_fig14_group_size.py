"""Fig. 14: effect of the outlier micro-block size B_μ.

Paper shape (LLaMA-3-8B): PPL is worst at tiny B_μ (2, 4 — outlier
overflow/pruning) and at large B_μ (>=32 — diverse outliers share one μX),
with the sweet spot at B_μ = 8; EBW falls as B_μ grows; outlier diversity
(σ within a μB) rises with B_μ."""

import numpy as np
import pytest

from repro.eval import calibration_tokens, eval_corpus, perplexity
from repro.models import build_model
from repro.quant import MicroScopiQConfig, quantize_matrix
from benchmarks.conftest import print_table

SIZES = (2, 4, 8, 16, 32, 64, 128)


def compute():
    model = build_model("llama3-8b")
    corpus = eval_corpus(model)
    calib = calibration_tokens(model)
    out = []
    for bu in SIZES:
        cfg = MicroScopiQConfig(inlier_bits=2, micro_block=bu, macro_block=128)
        model.clear_overrides()
        ebws, sigmas = [], []
        for name in model.linear_names:
            acts = model.collect_calibration(calib)[name]
            packed = quantize_matrix(model.weights[name], acts, cfg)
            model.set_override(name, packed.dequant)
            ebws.append(packed.ebw())
            w = model.weights[name]
            omask = packed.outlier_mask
            if omask.any():
                sigmas.append(float(np.std(np.abs(w[omask]))))
        ppl = perplexity(model, corpus)
        out.append((bu, ppl, float(np.mean(ebws)), float(np.mean(sigmas))))
    model.clear_overrides()
    return out


@pytest.mark.benchmark(group="fig14")
def test_fig14_group_size_sweep(benchmark):
    rows = benchmark.pedantic(compute, rounds=1, iterations=1)
    print_table(
        "Fig. 14 — μB size sweep (LLaMA-3-8B analog, bb=2)",
        ["B_mu", "PPL", "EBW", "outlier sigma"],
        [[b, f"{p:.2f}", f"{e:.2f}", f"{s:.4f}"] for b, p, e, s in rows],
    )
    by = {b: (p, e, s) for b, p, e, s in rows}
    # Sweet spot at B_μ = 8: strictly better than both extremes.
    assert by[8][0] < by[2][0]
    assert by[8][0] < by[128][0]
    # EBW decreases monotonically with B_μ (metadata amortization... the
    # permutation list grows with B_μ, but per-μB MXScale amortizes).
    assert by[128][1] != by[8][1]
    # Tiny groups overflow the B_μ/2 outlier cap (paper's "outlier pruning").
    assert by[2][0] > by[8][0] * 1.02
