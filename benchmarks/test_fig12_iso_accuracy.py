"""Fig. 12: iso-accuracy accelerator comparison (latency + energy).

Paper shape: MicroScopiQ v1 (W4A4) and v2 (WxA4) beat every baseline
accelerator on latency (avg 1.50x / 2.47x) and v2 has the lowest energy
(~1.5x below baselines); GOBO is the slowest / most energy-hungry.

Both halves of the figure run on the pipeline. The latency/energy half is
one cached hardware sweep over the ``archs`` axis (every systolic design ×
every model, decode-dominated streaming via ``hw_kwargs``), pivoted
per-arch on ``energy_nj``/``cycles`` through
:meth:`~repro.pipeline.SweepResult.pivot`; golden equality against the
direct :func:`simulate_arch_inference` path is asserted cell by cell. The
*iso-accuracy* premise itself — that the baseline architectures must run at
richer precision mixes (OliVe 50% 8-bit, ANT 25% 8-bit, GOBO's 15.6-bit
EBW) to match MicroScopiQ's W4 quality, which is exactly what their
``ArchSpec`` configurations encode — is verified by an
:class:`~repro.pipeline.ExperimentSpec` accuracy sweep through the session's
content-addressed cache (the same cells Table 2 shares)."""

import numpy as np
import pytest

from repro.hw import ARCHS, GEOMETRIES, simulate_arch_inference
from repro.pipeline import ExperimentSpec, SweepSpec, run_sweep
from benchmarks.conftest import print_table, run_hw_sweep

MODELS = ["opt-6.7b", "llama2-7b", "llama3-8b", "vila-7b"]
SYSTOLIC = [a for a in ARCHS if ARCHS[a].kind == "systolic"]

# The figure's decode-dominated streaming shape (one prompt token, 32
# generated), as pipeline hardware knobs.
HW_KW = (("decode_tokens", 32), ("prefill", 1))

# vila-7b is a VLM family: its hardware workload resolves through the vlm
# generator (same published geometry, same transformer streaming).
_SUBSTRATE = {"vila-7b": "vlm", "llava1.5-7b": "vlm"}

# The W4 operating points behind the iso-accuracy framing (LM families —
# VILA's caption metric lives in Fig. 10's sweep).
ISO_FAMILIES = ["opt-6.7b", "llama2-7b", "llama3-8b"]
ISO_METHODS = ["microscopiq", "olive", "gobo"]


def _hw_specs():
    return {
        (model, arch): ExperimentSpec(
            family=model,
            substrate=_SUBSTRATE.get(model, "lm"),
            arch=arch,
            hw_kwargs=HW_KW,
        )
        for model in MODELS
        for arch in SYSTOLIC
    }


def compute(cache_dir):
    specs = _hw_specs()
    result = run_hw_sweep(list(specs.values()), cache_dir)
    res = {key: result[spec] for key, spec in specs.items()}
    pivots = {
        metric: result.pivot("family", "arch", metric=metric)
        for metric in ("energy_nj", "cycles")
    }
    return res, pivots


@pytest.mark.benchmark(group="fig12")
def test_fig12_iso_accuracy(benchmark, hw_cache):
    res, pivots = benchmark.pedantic(
        compute, args=(hw_cache,), rounds=1, iterations=1
    )
    baselines = [a for a in SYSTOLIC if not a.startswith("microscopiq")]
    rows = []
    speedups_v1, speedups_v2, energy_ratio = [], [], []
    for model in MODELS:
        # The per-arch pivots are the figure's data layout: one row per
        # model, one latency/energy column per accelerator.
        lat, en = pivots["cycles"][model], pivots["energy_nj"][model]
        base_lat = np.mean([lat[a] for a in baselines])
        base_en = np.mean([en[a] for a in baselines])
        speedups_v1.append(base_lat / lat["microscopiq-v1"])
        speedups_v2.append(base_lat / lat["microscopiq-v2"])
        energy_ratio.append(base_en / en["microscopiq-v2"])
        for arch in SYSTOLIC:
            rows.append(
                [
                    model,
                    arch,
                    f"{lat[arch] / lat['microscopiq-v2']:.2f}",
                    f"{en[arch] / en['microscopiq-v2']:.2f}",
                    f"{res[(model, arch)]['conflict_pct']:.2f}",
                ]
            )
    print_table(
        "Fig. 12 — latency & energy normalized to MicroScopiQ-v2",
        ["model", "arch", "norm latency", "norm energy", "ReCoN conflict %"],
        rows,
    )
    print(
        f"\nmean speedup v1={np.mean(speedups_v1):.2f}x (paper 1.50x), "
        f"v2={np.mean(speedups_v2):.2f}x (paper 2.47x), "
        f"v2 energy {np.mean(energy_ratio):.2f}x lower (paper ~1.5x)"
    )
    assert 1.1 < np.mean(speedups_v1) < 3.0
    assert 1.8 < np.mean(speedups_v2) < 4.5
    assert np.mean(speedups_v2) > np.mean(speedups_v1)
    assert np.mean(energy_ratio) > 1.3
    for model in MODELS:
        lats = pivots["cycles"][model]
        assert min(lats, key=lats.get) == "microscopiq-v2"
        assert max(lats, key=lats.get) == "gobo"
    # Golden: every pipeline hardware cell == the direct simulator call.
    for (model, arch), metrics in res.items():
        direct = simulate_arch_inference(
            arch, GEOMETRIES[model], prefill=1, decode_tokens=32
        )
        assert metrics["cycles"] == direct.cycles
        assert metrics["energy_nj"] == direct.energy.total_nj
        assert metrics["conflict_pct"] == direct.stats.conflict_pct


def _iso_specs():
    specs = {}
    for family in ISO_FAMILIES:
        specs[(family, "fp16")] = ExperimentSpec(family=family)
        for method in ISO_METHODS:
            specs[(family, method)] = ExperimentSpec(
                family=family, method=method, w_bits=4
            )
    return specs


@pytest.mark.benchmark(group="fig12")
def test_fig12_iso_accuracy_premise(benchmark, ppl_cache):
    """The accuracy half of the figure, as one cached pipeline sweep: at the
    shared W4 operating point MicroScopiQ's PPL beats every baseline whose
    accelerator it is compared against, and OliVe degrades hardest — the
    reason its ArchSpec needs the 50% 8-bit mix to stay in the accuracy
    band at all."""

    def compute():
        specs = _iso_specs()
        ppl_cache.prefetch(specs.values())
        return {k: ppl_cache.metrics(s)["ppl"] for k, s in specs.items()}

    ppl = benchmark.pedantic(compute, rounds=1, iterations=1)
    print_table(
        "Fig. 12 premise — W4 PPL at the iso-accuracy operating points",
        ["model", "fp16"] + ISO_METHODS,
        [
            [f, f"{ppl[(f, 'fp16')]:.2f}"]
            + [f"{ppl[(f, m)]:.2f}" for m in ISO_METHODS]
            for f in ISO_FAMILIES
        ],
    )
    for family in ISO_FAMILIES:
        fp = ppl[(family, "fp16")]
        ms = ppl[(family, "microscopiq")]
        # MicroScopiQ W4 is near-lossless; the baselines' W4 points are not —
        # which is why their ArchSpecs carry richer precision mixes.
        assert ms < fp * 1.35
        assert ms < ppl[(family, "olive")]
        assert ms < ppl[(family, "gobo")]
        assert ppl[(family, "olive")] == max(ppl[(family, m)] for m in ISO_METHODS)


@pytest.mark.benchmark(group="fig12")
def test_fig12_power_breakdown(benchmark, hw_cache):
    """§7.5 power breakdown: outlier-rich VILA spends a larger ReCoN share
    than LLaMA-2-7B — read off the same pipeline-cached hardware cells as
    the main figure (``recon_values`` / ``energy_nj`` metrics)."""

    def shares():
        specs = {
            model: ExperimentSpec(
                family=model,
                substrate=_SUBSTRATE.get(model, "lm"),
                arch="microscopiq-v2",
                hw_kwargs=HW_KW,
            )
            for model in ("llama2-7b", "vila-7b")
        }
        result = run_sweep(
            SweepSpec.from_specs(specs.values()), cache_dir=hw_cache
        )
        out = {}
        for model, spec in specs.items():
            metrics = result[spec]
            recon_nj = metrics["recon_values"] * 0.004 / 1e3
            out[model] = recon_nj / metrics["energy_nj"]
        return out

    s = benchmark.pedantic(shares, rounds=1, iterations=1)
    print(f"\nReCoN energy share: llama2-7b={s['llama2-7b']:.4f} vila-7b={s['vila-7b']:.4f}")
    assert s["vila-7b"] > s["llama2-7b"]
