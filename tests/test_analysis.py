"""``repro-lint``: rule families, suppressions, baseline ratchet, self-check.

Rule behavior is exercised against the never-imported fixture modules under
``tests/data/lint_fixtures/repro/`` — the ``repro/`` path component is what
places them in the checker's package scopes. The load-bearing properties:

* each rule family flags its seeded violation and stays silent on the
  idiomatic counterpart (no false positives on the sanctioned patterns);
* ``# repro-lint: ignore[...]`` works on the same line, a comment line
  above, and a ``def`` line (covering the body);
* the baseline only ever ratchets down: known findings pass, *new* findings
  fail, fixed findings surface as stale entries;
* the repo's own ``src/repro`` tree is clean against the committed baseline
  — the checker is self-hosting.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.analysis import cli
from repro.analysis.engine import (
    BASELINE_DEFAULT,
    RULES,
    build_project,
    load_baseline,
    partition_against_baseline,
    run_rules,
    write_baseline,
)

REPO_ROOT = Path(__file__).resolve().parents[1]
FIXTURES = Path(__file__).parent / "data" / "lint_fixtures"


def lint_paths(*paths, select=None):
    project = build_project(paths, root=REPO_ROOT)
    return run_rules(project, select=select)


def lint_fixture(*rel, select=None):
    return lint_paths(*(FIXTURES / r for r in rel), select=select)


def write_module(tmp_path: Path, source: str, name: str = "mod.py") -> Path:
    """A throwaway kernel-scope module (under a ``repro/quant`` dir)."""
    pkg = tmp_path / "repro" / "quant"
    pkg.mkdir(parents=True, exist_ok=True)
    target = pkg / name
    target.write_text(source)
    return target


# ------------------------------------------------------------- rule families


class TestDeterminismRules:
    def test_bad_fixture_flags_every_rule(self):
        findings = lint_fixture("repro/quant/bad_determinism.py")
        by_rule = {f.rule for f in findings}
        assert by_rule == {
            "det-wallclock", "det-global-rng", "det-set-iter", "det-id",
        }
        wallclock = sorted(
            f.symbol for f in findings if f.rule == "det-wallclock"
        )
        assert wallclock == ["jitter.os.urandom", "stamp.time.time"]
        assert any(
            f.symbol == "jitter.numpy.random.rand" for f in findings
        )

    def test_good_fixture_is_clean(self):
        assert lint_fixture("repro/quant/good_determinism.py") == []

    def test_scope_is_kernel_packages_only(self, tmp_path):
        source = "import time\n\ndef f():\n    return time.time()\n"
        outside = tmp_path / "elsewhere"
        outside.mkdir()
        (outside / "mod.py").write_text(source)
        assert lint_paths(outside / "mod.py") == []
        assert len(lint_paths(write_module(tmp_path, source))) == 1

    def test_seeded_local_rng_allowed_unseeded_flagged(self, tmp_path):
        seeded = write_module(
            tmp_path,
            "import numpy as np\n\ndef f(seed):\n"
            "    return np.random.default_rng(seed)\n",
            "seeded.py",
        )
        unseeded = write_module(
            tmp_path,
            "import numpy as np\n\ndef f():\n"
            "    return np.random.default_rng()\n",
            "unseeded.py",
        )
        assert lint_paths(seeded) == []
        (finding,) = lint_paths(unseeded)
        assert finding.rule == "det-global-rng"
        assert "unseeded" in finding.message


class TestLockRule:
    def test_unguarded_write_flagged_guarded_ok(self):
        findings = lint_fixture("repro/locked.py")
        assert [f.symbol for f in findings] == ["Counter.touch.last"]
        assert findings[0].rule == "lock-unguarded-write"

    def test_class_without_lock_is_exempt(self, tmp_path):
        target = write_module(
            tmp_path,
            "class Plain:\n"
            "    def __init__(self):\n"
            "        self.total = 0\n"
            "    def add(self, n):\n"
            "        self.total += n\n",
        )
        assert lint_paths(target) == []


class TestRegistryRules:
    def test_schema_drift_fixture(self):
        findings = lint_fixture("repro/registry_bad.py")
        symbols = {f.symbol for f in findings}
        # Unknown Param, drifted default, and the capability contradiction.
        assert "demo.param.missing_knob" in symbols
        assert "demo.default.scale" in symbols
        assert "demo.act_aware" in symbols
        assert {f.rule for f in findings} == {
            "reg-method-schema", "reg-capability",
        }

    def test_consistent_spec_is_clean(self):
        assert lint_fixture("repro/registry_good.py") == []

    def test_builtin_registry_matches_kernels(self):
        # The real registry modules must satisfy their own declared schemas.
        # (Whole tree: schema resolution chases kernels and config dataclasses
        # across packages, so a partial project would skip — or misjudge —
        # specs whose callables it cannot see.)
        findings = lint_paths(
            REPO_ROOT / "src" / "repro",
            select=["reg-method-schema", "reg-capability", "reg-arch-schema"],
        )
        assert findings == []


class TestObsNameRules:
    def test_fixture_findings(self):
        findings = lint_fixture("repro/pipeline/bad_obs.py")
        symbols = {f.symbol for f in findings}
        assert "metric.pipeline.jobs_computd" in symbols
        assert "span.jobb" in symbols
        assert any(s.startswith("metric.dynamic@") for s in symbols)
        # Documented names pass untouched.
        assert "metric.pipeline.jobs_computed" not in symbols
        assert "span.job" not in symbols

    def test_vocabulary_module_is_consistent(self):
        from repro.obs.naming import METRIC_NAMES, SPAN_NAMES, valid_metric_name

        assert "pipeline.jobs_computed" in METRIC_NAMES
        assert "job" in SPAN_NAMES
        assert valid_metric_name("pipeline.jobs_computed")
        assert not valid_metric_name("pipeline.jobs_computd")


# ------------------------------------------------------------- suppressions


class TestSuppressions:
    SOURCE = "import time\n\ndef f():\n    return time.time()\n"

    def test_unsuppressed_is_flagged(self, tmp_path):
        (finding,) = lint_paths(write_module(tmp_path, self.SOURCE))
        assert finding.rule == "det-wallclock"

    def test_same_line(self, tmp_path):
        src = self.SOURCE.replace(
            "time.time()", "time.time()  # repro-lint: ignore[det-wallclock]"
        )
        assert lint_paths(write_module(tmp_path, src)) == []

    def test_comment_line_above(self, tmp_path):
        src = (
            "import time\n\ndef f():\n"
            "    # repro-lint: ignore[det-wallclock]\n"
            "    return time.time()\n"
        )
        assert lint_paths(write_module(tmp_path, src)) == []

    def test_def_line_covers_body(self, tmp_path):
        src = (
            "import time\n\n"
            "def f():  # repro-lint: ignore[det-wallclock]\n"
            "    return time.time()\n"
        )
        assert lint_paths(write_module(tmp_path, src)) == []

    def test_bare_ignore_suppresses_all(self, tmp_path):
        src = self.SOURCE.replace(
            "time.time()", "time.time()  # repro-lint: ignore"
        )
        assert lint_paths(write_module(tmp_path, src)) == []

    def test_wrong_rule_id_does_not_suppress(self, tmp_path):
        src = self.SOURCE.replace(
            "time.time()", "time.time()  # repro-lint: ignore[det-id]"
        )
        assert len(lint_paths(write_module(tmp_path, src))) == 1

    def test_fixture_suppression(self):
        assert lint_fixture("repro/quant/suppressed.py") == []


# ------------------------------------------------------------------ baseline


class TestBaselineRatchet:
    def test_partition(self, tmp_path):
        findings = lint_fixture("repro/locked.py")
        baseline_file = tmp_path / "baseline.json"
        write_baseline(baseline_file, findings)
        baseline = load_baseline(baseline_file)
        new, stale = partition_against_baseline(findings, baseline)
        assert new == [] and stale == []
        # A fixed finding becomes a stale entry; a fresh one fails.
        new, stale = partition_against_baseline([], baseline)
        assert new == [] and stale == sorted(f.key for f in findings)

    def test_cli_ratchet_cycle(self, tmp_path, capsys):
        target = write_module(
            tmp_path, "import time\n\ndef f():\n    return time.time()\n"
        )
        baseline_file = tmp_path / "baseline.json"
        base_args = [str(target), "--baseline-file", str(baseline_file)]

        # Unbaselined finding fails ...
        assert cli.main([*base_args, "--baseline", "off"]) == 1
        # ... writing the baseline accepts the current state ...
        assert cli.main([*base_args, "--baseline", "write"]) == 0
        assert cli.main(base_args) == 0
        # ... a NEW violation still fails (the ratchet never loosens) ...
        target.write_text(
            "import time, os\n\n"
            "def f():\n    return time.time()\n\n"
            "def g():\n    return os.urandom(4)\n"
        )
        assert cli.main(base_args) == 1
        # ... and fixing everything reports the stale entries.
        capsys.readouterr()
        target.write_text("def f():\n    return 0\n")
        assert cli.main(base_args) == 0
        assert "stale" in capsys.readouterr().out

    def test_baseline_keys_are_line_free(self, tmp_path):
        source = "import time\n\ndef f():\n    return time.time()\n"
        before = lint_paths(write_module(tmp_path, source))
        shifted = lint_paths(write_module(tmp_path, "\n\n" + source))
        assert before[0].key == shifted[0].key
        assert before[0].line != shifted[0].line


# ----------------------------------------------------------------------- CLI


class TestCli:
    def test_list_rules(self, capsys):
        assert cli.main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in RULES:
            assert rule_id in out

    def test_gcc_format(self, capsys):
        path = FIXTURES / "repro" / "locked.py"
        assert cli.main([str(path), "--baseline", "off", "--format", "gcc"]) == 1
        line = capsys.readouterr().out.strip()
        assert line.endswith("[lock-unguarded-write]")
        assert ":1: error:" in line

    def test_json_format(self, capsys):
        path = FIXTURES / "repro" / "locked.py"
        assert cli.main([str(path), "--baseline", "off", "--format", "json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["new"] and payload["findings"]
        assert payload["new"][0]["rule"] == "lock-unguarded-write"

    def test_select_filters_rules(self):
        findings = lint_fixture(
            "repro/quant/bad_determinism.py", select=["det-id"]
        )
        assert {f.rule for f in findings} == {"det-id"}

    def test_unknown_rule_is_usage_error(self, capsys):
        assert cli.main(["--select", "no-such-rule"]) == 2
        assert "unknown rule" in capsys.readouterr().err

    def test_missing_path_is_usage_error(self, capsys):
        assert cli.main(["definitely/not/here.py"]) == 2
        assert "no such path" in capsys.readouterr().err


# ------------------------------------------------------------- self-hosting


class TestSelfLint:
    def test_source_tree_clean_against_committed_baseline(self):
        src = REPO_ROOT / "src" / "repro"
        assert src.is_dir()
        findings = run_rules(build_project([src], root=REPO_ROOT))
        baseline = load_baseline(REPO_ROOT / BASELINE_DEFAULT)
        new, _stale = partition_against_baseline(findings, baseline)
        assert new == [], "\n".join(
            f"{f.path}:{f.line}: [{f.rule}] {f.message}" for f in new
        )

    def test_every_rule_family_is_registered(self):
        families = {r.split("-")[0] for r in RULES}
        assert {"det", "lock", "reg", "obs"} <= families


if __name__ == "__main__":
    raise SystemExit(pytest.main([__file__, "-q"]))
