"""High-level sweep driver: spec → stage graph → cache → executor → result.

:func:`run_sweep` is the one call the benchmarks, the CLI, and the examples
all go through. It enumerates a :class:`~repro.pipeline.spec.SweepSpec` into
jobs, answers everything it can from the content-addressed
:class:`~repro.pipeline.cache.ResultCache`, dispatches only the missing work
to the chosen executor, persists fresh results, and returns a
:class:`SweepResult` with the aggregation helpers the per-table/figure
drivers pivot on.

The job kernel (:func:`execute_job`) is a module-level function of the job
alone — no closures, no shared state — so it pickles cleanly into worker
processes and so a job's result is a pure function of its content hash.
Its RNG is spawned from that hash (``job.spawn_seed``), which is what makes
serial, thread, and process sweeps bit-identical.

**The codesign stage graph.** A ``kind="codesign"`` job is the pure kernel
chain ``run_quant_stage → lift_layerspecs → run_hw_job``:
:func:`run_codesign_job` runs it in one call (quantize + evaluate via
:func:`~repro.eval.harness.evaluate_setting`, lift the measured per-layer
packed statistics, simulate the lifted
:class:`~repro.hw.MeasuredWorkload`), merging accuracy and hardware metrics
under the job's single content hash. Inside :func:`run_sweep` the chain is
*staged*: the quant stage is an ordinary accuracy job cached under its own
accuracy-job hash — so an accuracy sweep and a codesign sweep over the same
settings share the expensive stage in either order — and the hardware stage
is cached under a content hash of its actual inputs (arch + knobs + the
lifted layer statistics), which is seed-free because quantization is
deterministic: differently-seeded codesign sweeps share hw-stage cells.
Stage reuse is reported in ``SweepResult.telemetry`` as
``quant_stage_hits`` / ``hw_stage_hits``.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from ..obs.trace import TRACE_ENV, current_tracer, enable_tracing, set_tracer, trace
from .cache import ResultCache
from .executor import JobOutcome
from .spec import HASH_VERSION, ExperimentSpec, Job, SweepSpec, _canonical

__all__ = [
    "SweepResult",
    "execute_job",
    "hw_stage_hash",
    "resolve_metric",
    "run_codesign_job",
    "run_sweep",
]


def _quant_stage_metrics(job: Job) -> Dict[str, Any]:
    """Run the quantize-and-evaluate stage of ``job`` (any non-hw kind)."""
    spec = job.spec
    from ..eval.harness import evaluate_setting

    with trace(
        "stage:quant",
        method=spec.method,
        family=spec.family,
        substrate=spec.substrate,
        w_bits=spec.w_bits,
    ):
        return evaluate_setting(
            family=spec.family,
            method=spec.method,
            w_bits=spec.w_bits,
            act_bits=spec.act_bits,
            quant_kwargs=dict(spec.quant_kwargs),
            kv_bits=spec.kv_bits,
            kv_residual=spec.kv_residual,
            eval_sequences=spec.eval_sequences,
            eval_seq_len=spec.eval_seq_len,
            rng=np.random.default_rng(job.spawn_seed),
            substrate=spec.substrate,
            calibration=spec.calibration,
            eval_kwargs=dict(spec.eval_kwargs),
        )


def hw_stage_hash(spec: ExperimentSpec, layers: Dict[str, Any], version: str = "") -> str:
    """Content address of a codesign job's hardware stage.

    A function of what the simulator actually reads — the arch, its knobs,
    the (substrate, family) workload geometry, and the *lifted layer
    statistics* — and of nothing else. The sweep seed only shapes the quant
    stage's evaluation randomness, never the deterministic quantization the
    lift measures, so differently-seeded codesign sweeps land on the same
    hw-stage address and share the cell.
    """
    payload = _canonical(
        {
            "stage": "codesign-hw",
            "substrate": spec.substrate,
            "family": spec.family,
            "arch": spec.arch,
            "hw_kwargs": dict(spec.hw_kwargs),
            "layers": layers,
            "version": version or HASH_VERSION,
        }
    )
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode()).hexdigest()


def _lift_layers(quant_metrics: Dict[str, Any], job: Job) -> Dict[str, Any]:
    """The measured per-layer statistics the quant stage exported."""
    layers = quant_metrics.get("layers")
    if not layers:
        raise RuntimeError(
            f"codesign job {job.label!r}: the quant stage exported no packed "
            f"layer statistics to lift (method {job.spec.method!r})"
        )
    return layers


def _merge_codesign(
    job: Job, quant_metrics: Dict[str, Any], hw_metrics: Dict[str, Any]
) -> Dict[str, Any]:
    """One merged metrics dict: accuracy metrics + hardware metrics + the
    stage addresses (both deterministic functions of the job, so the merge
    is identical whether the stages ran inline, staged, or from cache)."""
    layers = _lift_layers(quant_metrics, job)
    merged = dict(quant_metrics)
    merged.update(hw_metrics)
    merged["kind"] = "codesign"
    merged["quant_stage_hash"] = job.quant_stage().job_hash
    merged["hw_stage_hash"] = hw_stage_hash(job.spec, layers, job.version)
    return merged


def _run_hw_stage(job: Job, layers: Dict[str, Any]) -> Dict[str, Any]:
    """The lifted hardware stage: simulate the measured workload."""
    from ..hw import run_measured_hw_job

    spec = job.spec
    with trace(
        "stage:hw", arch=spec.arch, substrate=spec.substrate, family=spec.family
    ):
        return run_measured_hw_job(
            spec.substrate, spec.family, spec.arch, dict(spec.hw_kwargs), layers
        )


def run_codesign_job(
    job: Job, quant_metrics: Optional[Dict[str, Any]] = None
) -> Dict[str, Any]:
    """The codesign kernel, inline: quantize → lift → simulate → merge.

    A pure function of the job (given ``quant_metrics``, of the stage
    result, which is itself pure), so codesign jobs cache and parallelize
    like everything else; :func:`run_sweep` calls the same stage functions
    through its staged scheduler instead, to share stage results across
    jobs and sweeps.
    """
    if quant_metrics is None:
        quant_metrics = _quant_stage_metrics(job.quant_stage())
    with trace("stage:lift", family=job.spec.family, arch=job.spec.arch):
        layers = _lift_layers(quant_metrics, job)
    return _merge_codesign(job, quant_metrics, _run_hw_stage(job, layers))


def execute_job(job: Job) -> Dict[str, Any]:
    """The canonical job kernel, routed by the spec's resolved kind:

    * ``accuracy`` — quantize one setting and evaluate it;
    * ``hw`` — simulate the (substrate, family) workload on the named
      accelerator;
    * ``codesign`` — the full stage chain (:func:`run_codesign_job`).

    Everything is rebuilt from the spec inside the call (model, corpora,
    quantizer state) and all randomness flows from the job-hash-spawned seed
    (the hardware simulator is deterministic and draws none), so the result
    is identical no matter which executor or worker runs it.
    """
    spec = job.spec
    kind = spec.job_kind
    if kind == "codesign":
        return run_codesign_job(job)
    if kind == "hw":
        from ..hw import run_hw_job

        return run_hw_job(spec.substrate, spec.family, spec.arch, dict(spec.hw_kwargs))
    return _quant_stage_metrics(job)


def resolve_metric(outcome: JobOutcome) -> str:
    """The default metric of one outcome, from its substrate and kind.

    Accuracy and codesign jobs resolve to the substrate's task metric
    (``ppl`` / ``caption_score`` / ``top1`` / ``nll`` — a codesign job's
    headline is its quality; the hardware numbers ride under their own
    names). Pure hardware jobs resolve to ``latency_ms`` (GPU cost models to
    ``tokens_per_s``). This is what lets a mixed accuracy+hardware sweep
    aggregate with ``metric="auto"`` and no caller-named metrics.
    """
    spec = outcome.job.spec
    if spec.job_kind == "hw":
        metrics = outcome.metrics or {}
        return "latency_ms" if "latency_ms" in metrics else "tokens_per_s"
    from ..core.substrate import get_substrate

    return get_substrate(spec.substrate).metric


@dataclass
class SweepResult:
    """Outcomes of one sweep, in job order, plus pivot/aggregation helpers.

    The aggregation helpers default to ``metric="auto"``: each job's metric
    resolves per outcome through :func:`resolve_metric`, so mixed
    accuracy + hardware + codesign sweeps aggregate without callers naming
    metrics. An explicit metric name applies to every job; ``value`` and
    ``as_table`` raise a :class:`KeyError` naming the metric and the job's
    available metric keys when it is absent (``pivot`` stays lenient and
    leaves missing cells ``None`` — figures often span heterogeneous jobs).
    """

    jobs: List[Job]
    outcomes: List[JobOutcome]
    telemetry: Dict[str, Any] = field(default_factory=dict)

    # ------------------------------------------------------------- accessors
    @property
    def ok(self) -> bool:
        return all(o.ok for o in self.outcomes)

    @property
    def cache_hits(self) -> int:
        return sum(o.from_cache for o in self.outcomes)

    @property
    def hit_rate(self) -> float:
        return self.cache_hits / len(self.outcomes) if self.outcomes else 0.0

    def failures(self) -> List[JobOutcome]:
        return [o for o in self.outcomes if not o.ok]

    def metrics_by_hash(self) -> Dict[str, Optional[Dict[str, Any]]]:
        return {o.job.job_hash: o.metrics for o in self.outcomes}

    def __getitem__(self, spec: Union[ExperimentSpec, Job]) -> Dict[str, Any]:
        """Metrics for one experiment; raises if it failed or is absent."""
        if isinstance(spec, Job):
            match = lambda o: o.job.job_hash == spec.job_hash
        else:
            key = spec.key()
            match = lambda o: o.job.spec.key() == key
        for o in self.outcomes:
            if match(o):
                if o.metrics is None:
                    err = (o.error or {}).get("message", "missing")
                    raise KeyError(f"job {o.job.label!r} failed: {err}")
                return o.metrics
        raise KeyError(f"no such job in sweep: {spec!r}")

    # ---------------------------------------------------------- aggregation
    def _metric_of(self, outcome: JobOutcome, metric: str) -> Any:
        """One outcome's metric value under auto-resolution, strict on
        absence: the error names the metric and what the job does have."""
        name = resolve_metric(outcome) if metric == "auto" else metric
        metrics = outcome.metrics or {}
        if name not in metrics:
            raise KeyError(
                f"metric {name!r} is not in job {outcome.job.label!r} "
                f"metrics; available: {', '.join(sorted(metrics))}"
            )
        return metrics[name]

    def value(self, metric: str = "auto", **spec_fields) -> Any:
        """The single ``metric`` of the unique job matching ``spec_fields``
        (e.g. ``value(family="opt-6.7b", method="rtn", w_bits=4)``);
        ``"auto"`` resolves per the job's substrate and kind."""
        hits = [
            o
            for o in self.outcomes
            if all(getattr(o.job.spec, k) == v for k, v in spec_fields.items())
        ]
        if len(hits) != 1:
            raise KeyError(f"{spec_fields} matched {len(hits)} jobs, expected 1")
        if hits[0].metrics is None:
            raise KeyError(f"job {hits[0].job.label!r} failed")
        return self._metric_of(hits[0], metric)

    def as_table(
        self, *fields: str, metric: str = "auto", skip_failed: bool = True
    ) -> Dict[Any, Any]:
        """Flat dict keyed by spec-field tuples — the per-table form the
        benchmark drivers consume (``as_table("family", "method")``)."""
        out: Dict[Any, Any] = {}
        for o in self.outcomes:
            if o.metrics is None:
                if skip_failed:
                    continue
                raise KeyError(f"job {o.job.label!r} failed")
            key = tuple(getattr(o.job.spec, f) for f in fields)
            out[key[0] if len(key) == 1 else key] = self._metric_of(o, metric)
        return out

    def pivot(
        self, row: str = "family", col: str = "method", metric: str = "auto"
    ) -> Dict[Any, Dict[Any, Any]]:
        """Nested ``{row_value: {col_value: metric}}`` — the per-figure form.
        Lenient: a job without the (explicitly named) metric contributes
        ``None`` rather than raising, since figures often mix job kinds."""
        out: Dict[Any, Dict[Any, Any]] = {}
        for o in self.outcomes:
            if o.metrics is None:
                continue
            r = getattr(o.job.spec, row)
            c = getattr(o.job.spec, col)
            name = resolve_metric(o) if metric == "auto" else metric
            out.setdefault(r, {})[c] = o.metrics.get(name)
        return out

    def pivot_table(self, metric: str = "auto") -> Dict[str, Any]:
        """The family × setting pivot as one JSON-able table — the shape the
        CLI printer, the service's results endpoint, and the HTML view all
        render from. Columns are job labels with their family prefix
        stripped; rows are families; missing cells stay absent (lenient,
        like :meth:`pivot`)."""
        columns: List[str] = []
        rows: Dict[str, Dict[str, Any]] = {}
        for o in self.outcomes:
            if o.metrics is None:
                continue
            spec = o.job.spec
            prefix = (
                f"{spec.family}/"
                if spec.substrate == "lm"
                else f"{spec.substrate}:{spec.family}/"
            )
            label = o.job.label
            col = label[len(prefix):] if label.startswith(prefix) else label
            if col not in columns:
                columns.append(col)
            name = resolve_metric(o) if metric == "auto" else metric
            rows.setdefault(spec.family, {})[col] = o.metrics.get(name)
        return {"metric": metric, "columns": columns, "rows": rows}

    def pareto(
        self,
        x: str = "auto",
        y: str = "energy_nj",
        *,
        group_by: str = "family",
        maximize_x: Optional[bool] = None,
        maximize_y: bool = False,
    ) -> Dict[Any, List[Dict[str, Any]]]:
        """Per-group non-dominated frontiers over two metrics.

        The co-design question in one call: for each ``group_by`` value
        (family, by default), which settings are Pareto-optimal on
        ``(x, y)`` — typically the substrate's quality metric vs. the
        hardware stage's ``energy_nj``? Only jobs carrying *both* metrics
        contribute (codesign jobs do; pure accuracy or pure hw jobs are
        skipped, like :meth:`pivot`'s leniency).

        ``x="auto"`` resolves per job through :func:`resolve_metric`, and
        ``maximize_x=None`` then follows the substrate's metric direction
        (``top1``/``caption_score`` maximize, ``ppl``/``nll`` minimize);
        ``y`` defaults to ``energy_nj``, minimized. Returns
        ``{group: [point, ...]}`` with each point a JSON-able dict
        (``label`` / ``method`` / ``x_metric`` / ``x`` / ``y_metric`` /
        ``y``), frontier sorted by ``x`` ascending.
        """
        from ..core.substrate import get_substrate

        grouped: Dict[Any, List[Dict[str, Any]]] = {}
        for o in self.outcomes:
            if o.metrics is None:
                continue
            xn = resolve_metric(o) if x == "auto" else x
            yn = resolve_metric(o) if y == "auto" else y
            if xn not in o.metrics or yn not in o.metrics:
                continue
            if maximize_x is None:
                mx = x == "auto" and get_substrate(
                    o.job.spec.substrate
                ).higher_is_better
            else:
                mx = maximize_x
            point = {
                "label": o.job.label,
                "method": o.job.spec.method,
                "x_metric": xn,
                "x": float(o.metrics[xn]),
                "y_metric": yn,
                "y": float(o.metrics[yn]),
                # Oriented (minimize-both) coordinates for the dominance test.
                "_ox": -float(o.metrics[xn]) if mx else float(o.metrics[xn]),
                "_oy": -float(o.metrics[yn]) if maximize_y else float(o.metrics[yn]),
            }
            grouped.setdefault(getattr(o.job.spec, group_by), []).append(point)

        out: Dict[Any, List[Dict[str, Any]]] = {}
        for group, points in grouped.items():
            frontier = [
                a
                for a in points
                if not any(
                    b is not a
                    and b["_ox"] <= a["_ox"]
                    and b["_oy"] <= a["_oy"]
                    and (b["_ox"] < a["_ox"] or b["_oy"] < a["_oy"])
                    for b in points
                )
            ]
            frontier.sort(key=lambda p: p["x"])
            out[group] = [
                {k: v for k, v in p.items() if not k.startswith("_")}
                for p in frontier
            ]
        return out

    def by_label(self, metric: Optional[str] = None) -> Dict[str, Any]:
        """``{job label: metrics (or one metric)}`` for explicit-step sweeps."""
        out: Dict[str, Any] = {}
        for o in self.outcomes:
            if o.metrics is not None:
                out[o.job.label] = o.metrics if metric is None else o.metrics.get(metric)
        return out

    def records(self) -> List[Dict[str, Any]]:
        """JSON-ready list of per-job records (spec key + metrics/error)."""
        return [
            dict(o.record(), hash=o.job.job_hash, from_cache=o.from_cache)
            for o in self.outcomes
        ]


# --------------------------------------------------------- staged scheduling


@dataclass(frozen=True)
class _HwStageTask:
    """A dispatchable hardware stage: the codesign job + its lifted layers.

    Module-level and closure-free so it pickles into process-pool workers;
    quacks enough like a Job (``label``) for the executor's progress hooks.
    ``stage_hash`` is the task's identity on the way back from the pool —
    labels are free-form user tags and may collide across jobs.
    """

    job: Job
    stage_hash: str
    layers: Tuple[Tuple[str, Tuple[Tuple[str, Any], ...]], ...]

    @property
    def label(self) -> str:
        return f"{self.job.label} [hw stage]"

    def layer_dict(self) -> Dict[str, Dict[str, Any]]:
        return {name: dict(stats) for name, stats in self.layers}

    @staticmethod
    def pack_layers(layers: Dict[str, Any]) -> Tuple:
        return tuple(
            (name, tuple(sorted(stats.items()))) for name, stats in sorted(layers.items())
        )


def _hw_stage_kernel(task: _HwStageTask) -> Dict[str, Any]:
    return _run_hw_stage(task.job, task.layer_dict())


class _StageBook:
    """Bookkeeping for the codesign stage graph inside one sweep run."""

    def __init__(self, cache: Optional[ResultCache], recompute: bool):
        self.cache = cache
        self.recompute = recompute
        self.quant_results: Dict[str, Dict[str, Any]] = {}
        self.quant_errors: Dict[str, Dict[str, str]] = {}
        self.quant_spans: Dict[str, Dict[str, Any]] = {}
        self.quant_stage_hits = 0
        self.hw_stage_hits = 0

    def lookup_quant(self, qjob: Job) -> Optional[Dict[str, Any]]:
        """A usable cached quant-stage result (must carry the lift)."""
        if self.cache is None or self.recompute:
            return None
        record = self.cache.get(qjob.job_hash)
        metrics = (record or {}).get("metrics")
        if metrics and metrics.get("layers"):
            return metrics
        return None  # pre-lift records recompute (and refresh) the stage

    def lookup_hw(self, hh: str) -> Optional[Dict[str, Any]]:
        if self.cache is None or self.recompute:
            return None
        return ((self.cache.get(hh) or {}).get("metrics")) or None

    def store_hw(self, hh: str, job: Job, metrics: Dict[str, Any], seconds: float) -> None:
        if self.cache is not None:
            self.cache.put(
                hh,
                {
                    "stage": "codesign-hw",
                    "label": f"{job.label} [hw stage]",
                    "metrics": metrics,
                    "seconds": seconds,
                },
            )


def run_sweep(
    sweep: Union[SweepSpec, Sequence[ExperimentSpec]],
    cache_dir: Optional[str] = None,
    executor: str = "auto",
    workers: Optional[int] = None,
    progress: bool = False,
    recompute: bool = False,
    kernel: Callable[[Job], Dict[str, Any]] = execute_job,
    trace: Optional[bool] = None,
) -> SweepResult:
    """Run every job of ``sweep``, computing only what the cache lacks.

    Codesign jobs run as a two-phase stage graph: phase 1 computes every
    pending accuracy/hardware job *plus* the quant stages codesign jobs
    still need (deduplicated — a codesign sweep over settings an accuracy
    sweep already cached reuses those cells, counted in
    ``telemetry["quant_stage_hits"]``); phase 2 simulates the lifted
    hardware stages (cached by stage content, seed-free —
    ``telemetry["hw_stage_hits"]``) and merges.

    When a cache directory is given, every run appends one record — spec
    digest, per-job outcomes, counter delta, span tree when traced — to the
    run ledger at ``<cache>/runs/runs.jsonl`` (queried by ``repro-sweep
    report`` / ``trace``); its id lands in ``telemetry["run_id"]``.

    Args:
        sweep: a :class:`SweepSpec` or an explicit list of
            :class:`ExperimentSpec` steps.
        cache_dir: directory of the content-addressed result store; ``None``
            disables persistence (everything recomputes).
        executor: ``"serial"``, ``"thread"``, ``"process"``, or ``"auto"``.
        workers: pool width (defaults to the usable CPU count).
        progress: print a live ticker to stderr.
        recompute: ignore cached entries (but still refresh them on disk).
        kernel: job function — override for testing only (a custom kernel
            also disables stage decomposition; codesign jobs then run
            through it whole).
        trace: ``True`` enables span tracing for this sweep (and exports
            ``REPRO_TRACE=1`` so pool workers join in), ``False`` disables
            it, ``None`` (default) keeps whatever
            :func:`repro.obs.enable_tracing` / ``REPRO_TRACE`` already chose.
            The previous tracer and environment are restored afterwards.
    """
    prev_tracer = current_tracer()
    prev_env = os.environ.get(TRACE_ENV)
    if trace is True:
        enable_tracing()
        os.environ[TRACE_ENV] = "1"
    elif trace is False:
        set_tracer(None)
        os.environ[TRACE_ENV] = "0"
    try:
        # Local import: the scheduler module imports this one's kernels.
        from .scheduler import SweepScheduler

        return SweepScheduler(
            cache_dir=cache_dir, executor=executor, workers=workers
        ).run(sweep, progress=progress, recompute=recompute, kernel=kernel)
    finally:
        if trace is not None:
            set_tracer(prev_tracer)
            if prev_env is None:
                os.environ.pop(TRACE_ENV, None)
            else:
                os.environ[TRACE_ENV] = prev_env


def _codesign_span_tree(
    job: Job,
    book: _StageBook,
    lift_span: Optional[Dict[str, Any]],
    hw_span: Optional[Dict[str, Any]],
) -> Optional[Dict[str, Any]]:
    """The synthesized span tree of one *staged* codesign job.

    The staged scheduler runs the job's stages in different places (phase 1
    pool, the runner thread, phase 2 pool), so no single capture saw the
    whole job; this stitches the stage captures back into one ``job`` node
    whose total is exactly the sum of its stage children — stages served
    from cache simply have no child here.
    """
    children: List[Dict[str, Any]] = []
    qspan = book.quant_spans.get(job.quant_stage().job_hash)
    if qspan:
        kids = qspan.get("children") or []
        children.extend(kids or [dict(qspan, name="stage:quant")])
    if lift_span:
        children.append(lift_span)
    if hw_span:
        kids = hw_span.get("children") or []
        children.extend(kids or [dict(hw_span, name="stage:hw")])
    if not children:
        return None
    return {
        "name": "job",
        "attrs": {
            "label": job.label,
            "hash": job.job_hash,
            "kind": "codesign",
            "staged": True,
        },
        "seconds": round(sum(float(c.get("seconds", 0.0)) for c in children), 6),
        "children": children,
    }
