"""CNN substrate for the Table 4 generality study (ResNet50/VGG16 analogs).

Convolutions are lowered to GEMM via im2col, so conv kernels become
``[c_out, c_in*k*k]`` matrices — exactly the shape the quantizers consume.
Accuracy is agreement with the full-precision model's predictions on a
held-out synthetic image set, reported as *relative top-1* (FP = 100%);
EXPERIMENTS.md maps it onto the paper's absolute numbers via the published
FP baselines (76.15% ResNet50, 71.59% VGG16).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

import numpy as np

from .generator import plant_outliers

__all__ = ["ConvNet", "CNN_PROFILES", "build_cnn", "im2col"]


@dataclass(frozen=True)
class CnnProfile:
    name: str
    paper_model: str
    channels: List[int]  # per conv stage
    n_classes: int
    img_hw: int
    outlier_pct: float
    seed: int


CNN_PROFILES: Dict[str, CnnProfile] = {
    p.name: p
    for p in [
        CnnProfile("resnet50", "ResNet50", [16, 32, 64], 10, 16, 0.6, 301),
        CnnProfile("vgg16", "VGG16", [16, 32, 32, 64], 10, 16, 0.5, 302),
    ]
}


def im2col(x: np.ndarray, k: int = 3) -> np.ndarray:
    """Unfold ``[b, c, h, w]`` into ``[b, h*w, c*k*k]`` patches (pad=same)."""
    b, c, h, w = x.shape
    pad = k // 2
    xp = np.pad(x, ((0, 0), (0, 0), (pad, pad), (pad, pad)))
    cols = np.empty((b, h * w, c * k * k))
    idx = 0
    for di in range(k):
        for dj in range(k):
            patch = xp[:, :, di : di + h, dj : dj + w]
            cols[:, :, idx * c : (idx + 1) * c] = patch.transpose(0, 2, 3, 1).reshape(
                b, h * w, c
            )
            idx += 1
    return cols


class ConvNet:
    """Small conv classifier; conv weights are the quantization targets."""

    def __init__(self, profile: CnnProfile):
        self.profile = profile
        rng = np.random.default_rng(profile.seed)
        self.weights: Dict[str, np.ndarray] = {}
        self.overrides: Dict[str, np.ndarray] = {}
        self.act_quant: Dict[str, object] = {}
        c_in = 3
        for i, c_out in enumerate(profile.channels):
            w = rng.normal(0.0, 1.0, (c_out, c_in * 9)) / np.sqrt(c_in * 9)
            plant_outliers(w, profile.outlier_pct, 0.1, rng)
            self.weights[f"conv{i}"] = w
            c_in = c_out
        self.head = rng.normal(0.0, 1.0, (profile.n_classes, c_in)) / np.sqrt(c_in)

    @property
    def linear_names(self) -> List[str]:
        return [f"conv{i}" for i in range(len(self.profile.channels))]

    def _w(self, name: str) -> np.ndarray:
        return self.overrides.get(name, self.weights[name])

    def forward(
        self,
        images: np.ndarray,
        capture: dict | None = None,
        stop_after_stage: int | None = None,
    ) -> np.ndarray:
        """Logits for ``[b, 3, h, w]`` images (stride-2 pooling per stage).

        ``stop_after_stage=i`` returns stage ``i``'s feature map without the
        pool/head (the targeted-calibration fast path)."""
        x = images
        for i in range(len(self.profile.channels)):
            name = f"conv{i}"
            cols = im2col(x)
            if capture is not None:
                capture.setdefault(name, []).append(cols.reshape(-1, cols.shape[-1]))
            aq = self.act_quant.get(name)
            if aq is not None:
                cols = aq(cols)
            b, hw, _ = cols.shape
            h = w = int(np.sqrt(hw))
            out = cols @ self._w(name).T  # [b, hw, c_out]
            out = np.maximum(out, 0.0)  # ReLU
            out = out.reshape(b, h, w, -1).transpose(0, 3, 1, 2)
            x = out[:, :, ::2, ::2]  # stride-2 downsample
            if stop_after_stage is not None and i >= stop_after_stage:
                return x
        feats = x.mean(axis=(2, 3))  # global average pool
        return feats @ self.head.T

    def collect_calibration(
        self, images: np.ndarray, names: list | None = None
    ) -> Dict[str, np.ndarray]:
        capture: Dict[str, list] = {}
        stop = None
        if names is not None:
            names = list(names)
            stop = max(int(n[4:]) for n in names)  # "conv3" -> 3
        self.forward(images, capture=capture, stop_after_stage=stop)
        return {
            k: np.concatenate(v, axis=0)
            for k, v in capture.items()
            if names is None or k in names
        }

    def set_override(self, name: str, weight: np.ndarray) -> None:
        if weight.shape != self.weights[name].shape:
            raise ValueError(f"shape mismatch for {name}")
        self.overrides[name] = weight

    def clear_overrides(self) -> None:
        self.overrides.clear()
        self.act_quant.clear()

    def predict(self, images: np.ndarray) -> np.ndarray:
        return np.argmax(self.forward(images), axis=-1)


def build_cnn(name: str) -> ConvNet:
    try:
        return ConvNet(CNN_PROFILES[name])
    except KeyError:
        known = ", ".join(CNN_PROFILES)
        raise KeyError(f"unknown CNN {name!r}; known: {known}") from None
