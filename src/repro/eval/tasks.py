"""Synthetic zero-shot benchmark tasks (the BoolQ/PIQA/... analogs).

Each task asks the model to rank a small set of candidate next tokens after
a prompt. Candidates are chosen among the full-precision model's
moderately-ranked tokens so the FP margins are small — which is what makes
the task *sensitive* to quantization noise, like real zero-shot benchmarks.
The FP model scores 100% by construction; a quantized model's score is its
agreement with the FP ranking, the "accuracy relative to baseline" shape
that Fig. 2(b) and Table 3 compare.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..models.transformer import TransformerLM

__all__ = ["TaskSpec", "LM_TASKS", "task_labels", "task_accuracy"]


@dataclass(frozen=True)
class TaskSpec:
    """A synthetic ranking task."""

    name: str
    paper_task: str
    n_choices: int
    n_examples: int = 96
    prompt_len: int = 16
    # Candidate tokens are the FP model's tokens at these ranks; the label
    # is always the best-ranked one. Closer ranks = harder task.
    base_rank: int = 3
    rank_step: int = 5
    seed: int = 0


LM_TASKS: dict[str, TaskSpec] = {
    t.name: t
    for t in [
        TaskSpec("boolq", "BoolQ", 2, seed=11),
        TaskSpec("piqa", "PIQA", 2, seed=12),
        TaskSpec("hellaswag", "HellaSwag", 4, seed=13),
        TaskSpec("arc-c", "ARC-c", 4, seed=14, base_rank=2, rank_step=4),
        TaskSpec("mmlu", "MMLU", 4, seed=15, base_rank=2, rank_step=3),
        TaskSpec("winogrande", "WinoGrande", 2, seed=16, base_rank=2, rank_step=3),
    ]
}


def _prompts(task: TaskSpec, vocab: int, model_seed: int) -> np.ndarray:
    rng = np.random.default_rng(task.seed * 1000 + model_seed)
    return rng.integers(0, vocab, size=(task.n_examples, task.prompt_len))


def task_labels(fp_model: TransformerLM, task: TaskSpec) -> tuple[np.ndarray, np.ndarray]:
    """(prompts, candidate token ids) with column 0 the FP-correct choice.

    Must be called on the model *before* quantization overrides are
    installed (the FP reference defines the ground truth).
    """
    if fp_model.overrides:
        raise RuntimeError("task_labels must be computed on the full-precision model")
    prompts = _prompts(task, fp_model.profile.vocab, fp_model.profile.seed)
    logits = fp_model.forward(prompts)[:, -1, :]
    order = np.argsort(-logits, axis=-1)
    ranks = [task.base_rank + i * task.rank_step for i in range(task.n_choices)]
    candidates = order[:, ranks]
    return prompts, candidates


def task_accuracy(
    model: TransformerLM, prompts: np.ndarray, candidates: np.ndarray
) -> float:
    """Percent of examples where the model ranks candidate 0 highest."""
    logits = model.forward(prompts)[:, -1, :]
    cand_logits = np.take_along_axis(logits, candidates, axis=-1)
    pred = np.argmax(cand_logits, axis=-1)
    return 100.0 * float(np.mean(pred == 0))
