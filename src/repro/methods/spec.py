"""Declarative quantization-method specs and the class-based lifecycle.

PR 2 made *substrates* first-class; this module does the same for *methods*.
A :class:`MethodSpec` carries everything the engine, the pipeline, and the
CLI previously hard-coded per method:

* **capability flags** — ``needs_hessian`` (wants a precomputed
  :class:`~repro.methods.resources.HessianBundle`), ``hessian_with_act``
  (whether that bundle is still valid in weight-activation mode; migration
  methods rescale their calibration per α, invalidating it), ``act_aware``
  (accepts ``act_bits``), ``supports_per_tensor`` (static per-tensor scale),
  ``group_param`` (which keyword the sweep's group-size axis maps onto), and
  ``supported_substrates`` (``None`` = every workload class);
* a validated **param schema** — the method's public knobs with typed
  defaults; unknown or ill-typed parameters raise
  :class:`MethodParamError` *before* any job runs instead of threading
  through ``**kwargs`` into a kernel crash;
* a **quantizer factory** — builds the class-based :class:`Quantizer` whose
  explicit lifecycle (``prepare(layer_ctx) → resources`` then
  ``quantize_layer(weights, resources, **params)``) replaces the positional
  ``quantize_<name>(weights, calib_inputs, **kwargs)`` calling convention.

``prepare`` is where per-layer environment acquisition lives: it consumes
the layer's calibration activations and (for Hessian-aware methods) resolves
a :class:`HessianBundle` from the engine's store, so the expensive factor
work is shared across settings, threads, and — via the store's disk tier —
worker processes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import (
    Any,
    Callable,
    Dict,
    Optional,
    Protocol,
    Sequence,
    Tuple,
    runtime_checkable,
)

import numpy as np

from .resources import HessianBundle, HessianStore

__all__ = [
    "LayerContext",
    "LayerResources",
    "MethodParamError",
    "MethodSpec",
    "MethodSubstrateError",
    "Param",
    "Quantizer",
]


class MethodParamError(ValueError):
    """An unknown or invalid method parameter, caught at spec-build time."""


class MethodSubstrateError(ValueError):
    """A method asked to run on a substrate it does not support."""


@dataclass(frozen=True)
class Param:
    """One entry of a method's parameter schema.

    ``kinds`` are the accepted Python types (``bool`` is checked before
    ``int`` so flags can't silently pass as integers); ``choices`` optionally
    pins a closed value set. ``None`` is always accepted when ``default`` is
    ``None`` (optional parameters).
    """

    name: str
    default: Any = None
    kinds: Tuple[type, ...] = (int,)
    doc: str = ""
    choices: Optional[Tuple[Any, ...]] = None

    def check(self, value: Any, method: str) -> None:
        if value is None and self.default is None:
            return
        if isinstance(value, bool) and bool not in self.kinds:
            raise MethodParamError(
                f"method {method!r}: parameter {self.name!r} expects "
                f"{self._kind_names()}, got bool {value!r}"
            )
        if not isinstance(value, self.kinds):
            raise MethodParamError(
                f"method {method!r}: parameter {self.name!r} expects "
                f"{self._kind_names()}, got {type(value).__name__} {value!r}"
            )
        if self.choices is not None and value not in self.choices:
            raise MethodParamError(
                f"method {method!r}: parameter {self.name!r} must be one of "
                f"{self.choices}, got {value!r}"
            )

    def _kind_names(self) -> str:
        return "/".join(k.__name__ for k in self.kinds)

    def describe(self) -> str:
        """``name=default`` schema line for error messages and the CLI."""
        return f"{self.name}={self.default!r}"


@dataclass
class LayerContext:
    """Everything ``prepare`` may draw on for one layer of one setting.

    The engine builds one per dispatched layer; standalone use (tests, the
    one-shot :meth:`MethodSpec.quantize` convenience) fills just the fields
    it has. ``params`` are the *validated* method parameters for this call.
    ``spec`` is the owning :class:`MethodSpec` — the single source of the
    capability flags adapters consult in ``prepare``.
    """

    name: str
    weights: np.ndarray
    calib_inputs: Optional[np.ndarray] = None
    w_bits: int = 4
    act_bits: Optional[int] = None
    params: Dict[str, Any] = field(default_factory=dict)
    hessian_store: Optional[HessianStore] = None
    substrate: Optional[str] = None
    spec: Optional[MethodSpec] = None


@dataclass
class LayerResources:
    """What ``prepare`` resolved for a layer: calibration + Hessian factors.

    ``hessian`` is a lazy :class:`HessianBundle` (or ``None`` for
    calibration-free / migration-mode calls); nothing is computed until the
    quantizer actually touches a factor.
    """

    calib_inputs: Optional[np.ndarray] = None
    hessian: Optional[HessianBundle] = None


@runtime_checkable
class Quantizer(Protocol):
    """The class-based method lifecycle the engine drives per layer."""

    def prepare(self, ctx: LayerContext) -> LayerResources:
        """Acquire per-layer resources (calibration, Hessian bundle)."""
        ...

    def quantize_layer(self, weights: np.ndarray, resources: Optional[LayerResources], **params):
        """Quantize one weight matrix using prepared ``resources``;
        returns a :class:`~repro.baselines.base.BaselineResult`."""
        ...


@dataclass(frozen=True)
class MethodSpec:
    """One registered quantization method: capabilities, schema, factory.

    Attributes:
        name: registry key (``"gptq"``, ``"microscopiq"``, …).
        summary: one-line description for the CLI capability table.
        make: zero-arg factory returning a (stateless, thread-safe)
            :class:`Quantizer` instance.
        params: the public parameter schema; every keyword a caller may pass
            beyond the universal ``bits`` / ``act_bits``.
        needs_hessian: ``prepare`` should resolve a
            :class:`HessianBundle` (the method reads H / H⁻¹ / U).
        hessian_with_act: the precomputed bundle stays valid when
            ``act_bits`` is set (False for migration-style methods that
            rescale their calibration inputs per α).
        act_aware: accepts an ``act_bits`` keyword (weight-activation mode).
        supports_per_tensor: offers a static whole-tensor scale mode.
        group_param: keyword the sweep's ``group_sizes`` axis binds to
            (``"group_size"``, ``"macro_block"``, or ``None`` for methods
            with no group knob).
        exports_packed: quantize_layer results carry a structural
            :class:`~repro.quant.packed.PackedLayer` under ``meta["packed"]``
            — the per-layer outlier micro-block map the co-design pipeline
            lifts into measured hardware workloads
            (:meth:`repro.hw.LayerSpec.from_packed`). Methods without it
            cannot run ``kind="codesign"`` jobs.
        row_batchable: the kernel is exactly row-independent in weight-only
            mode — quantizing ``vstack(W_a, W_b)`` against shared calibration
            inputs yields bit-identical rows to quantizing ``W_a`` and
            ``W_b`` separately. The engine's vector path uses this to stack
            same-shape layers of a calibration group into one kernel
            invocation (see :func:`repro.quant.engine.quantize_model`).
            Methods with any cross-row coupling (AWQ's whole-matrix α
            search, GoBo's global k-means, SmoothQuant's per-column
            ``max|W|`` migration scales, OliVe's aggregate victim counter,
            Omni-MicroScopiQ's whole-matrix config competition) must leave
            this False.
        supported_substrates: workload classes the method can quantize;
            ``None`` means every registered substrate.
        damp_param: which parameter carries the Hessian damping λ.
        version: optional spec version hashed into pipeline job identities,
            so cached results invalidate when a plugin's numerics change
            (builtins ride ``repro.__version__`` instead and leave this
            ``None`` — omitting it keeps job hashes stable).
        source: where the spec came from (``"builtin"`` or the plugin
            distribution name, filled by the plugin loader).
    """

    name: str
    summary: str
    make: Callable[[], Quantizer]
    params: Tuple[Param, ...] = ()
    needs_hessian: bool = False
    hessian_with_act: bool = True
    act_aware: bool = False
    supports_per_tensor: bool = False
    exports_packed: bool = False
    row_batchable: bool = False
    group_param: Optional[str] = "group_size"
    supported_substrates: Optional[Tuple[str, ...]] = None
    damp_param: str = "damp_ratio"
    version: Optional[str] = None
    source: str = "builtin"

    # ------------------------------------------------------------ the schema
    def param_schema(self) -> Dict[str, Param]:
        return {p.name: p for p in self.params}

    def describe_schema(self) -> str:
        return ", ".join(p.describe() for p in self.params) or "(no parameters)"

    def validate_params(self, params: Dict[str, Any]) -> Dict[str, Any]:
        """Check ``params`` against the schema; returns them unchanged.

        Unknown names and type/choice violations raise
        :class:`MethodParamError` listing the full schema — this is the
        fail-fast replacement for the old ``**kwargs`` threading, and it runs
        both at pipeline spec-build time and again at the engine boundary.
        """
        schema = self.param_schema()
        unknown = sorted(set(params) - set(schema))
        if unknown:
            raise MethodParamError(
                f"method {self.name!r} got unknown parameter(s) "
                f"{', '.join(repr(u) for u in unknown)}; its schema is: "
                f"{self.describe_schema()}"
            )
        for key, value in params.items():
            schema[key].check(value, self.name)
        return params

    def defaults(self) -> Dict[str, Any]:
        return {p.name: p.default for p in self.params}

    # --------------------------------------------------------- compatibility
    def supports_substrate(self, substrate: str) -> bool:
        return (
            self.supported_substrates is None
            or substrate in self.supported_substrates
        )

    def check_substrate(self, substrate: str) -> None:
        if not self.supports_substrate(substrate):
            known = ", ".join(self.supported_substrates or ())
            raise MethodSubstrateError(
                f"method {self.name!r} does not support substrate "
                f"{substrate!r}; supported: {known or 'none declared'}"
            )

    def damp_ratio(self, params: Dict[str, Any]) -> float:
        """The damping λ this call would use for its Hessian."""
        value = params.get(self.damp_param)
        if value is None:
            config = params.get("config")
            if config is not None and hasattr(config, "damp_ratio"):
                return float(config.damp_ratio)
            schema = self.param_schema().get(self.damp_param)
            value = schema.default if schema is not None else 0.01
        return float(value if value is not None else 0.01)

    def wants_hessian(self, act_bits: Optional[int]) -> bool:
        """Whether ``prepare`` should resolve a bundle for this setting."""
        return self.needs_hessian and (act_bits is None or self.hessian_with_act)

    # ------------------------------------------------------------ one-shot
    def quantize(
        self,
        weights: np.ndarray,
        calib_inputs: Optional[np.ndarray] = None,
        *,
        bits: int = 4,
        act_bits: Optional[int] = None,
        hessian_store: Optional[HessianStore] = None,
        substrate: Optional[str] = None,
        **params,
    ):
        """Run the full lifecycle on one matrix (the library convenience).

        Equivalent to what the engine does per layer: validate, ``prepare``,
        ``quantize_layer``. Returns the method's
        :class:`~repro.baselines.base.BaselineResult`.
        """
        if substrate is not None:
            self.check_substrate(substrate)
        self.validate_params(params)
        call = dict(params, bits=bits)
        if act_bits is not None:
            if not self.act_aware:
                raise MethodParamError(
                    f"method {self.name!r} is weight-only; it does not take act_bits"
                )
            call["act_bits"] = act_bits
        quantizer = self.make()
        ctx = LayerContext(
            name="<standalone>",
            weights=weights,
            calib_inputs=calib_inputs,
            w_bits=bits,
            act_bits=act_bits if self.act_aware else None,
            params=call,
            hessian_store=hessian_store,
            substrate=substrate,
            spec=self,
        )
        resources = quantizer.prepare(ctx)
        return quantizer.quantize_layer(weights, resources, **call)

    # ------------------------------------------------------------ reporting
    def capabilities(self) -> Dict[str, Any]:
        """Flat capability dict for the CLI table and plugin listings."""
        return {
            "name": self.name,
            "hessian": self.needs_hessian,
            "act": self.act_aware,
            "per_tensor": self.supports_per_tensor,
            "packed": self.exports_packed,
            "row_batchable": self.row_batchable,
            "group_param": self.group_param,
            "substrates": (
                "all"
                if self.supported_substrates is None
                else ",".join(self.supported_substrates)
            ),
            "params": self.describe_schema(),
            "source": self.source,
        }
