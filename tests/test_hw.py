"""The repro.hw registry: spec conformance, workloads, sim, and pipeline glue.

Covers the acceptance surface of the `repro.hw` redesign:

* registry conformance — every builtin arch simulates every substrate's
  hardware workload; area breakdowns sum; the simulator is deterministic
  across executors;
* golden values — the registry/pipeline path reproduces the seed-era
  numbers (Table 5 areas/density, Table 6 throughput, Fig. 13 latency)
  bit-for-bit;
* spec-build-time validation — unknown archs, unknown/ill-typed hw
  parameters (with the schema in the error), unsupported arch × substrate
  pairs;
* the deprecated :mod:`repro.accelerator` shim;
* pipeline integration — hardware jobs hash stably, normalize quantization
  fields out of their identity, cache, and run through the CLI (including
  the ``--archs``/``--param``/``describe`` surface and arch plugins with
  version-sensitive job hashes).
"""

from __future__ import annotations

import sys
import warnings

import pytest

from repro.hw import (
    ARCHS,
    GEOMETRIES,
    AcceleratorConfig,
    HwArchSpec,
    HwParamError,
    HwWorkload,
    SimReport,
    build_workload,
    check_hw_kwargs,
    get_arch,
    known_arch_names,
    run_hw_job,
    simulate,
    simulate_arch_inference,
    workload_families,
    workload_substrates,
)
from repro.pipeline import ExperimentSpec, SweepSpec, run_sweep
from repro.pipeline.spec import Job, describe

SYSTOLIC = [n for n, a in ARCHS.items() if a.kind == "systolic"]
GPU = [n for n, a in ARCHS.items() if a.kind == "gpu"]

# Small streaming shapes keep the conformance sweep fast.
FAST = {"prefill": 1, "decode_tokens": 1}


class TestRegistry:
    def test_builtin_archs_present(self):
        assert {"microscopiq-v1", "microscopiq-v2", "olive", "gobo",
                "olaccel", "ant", "adaptivfloat"} <= set(SYSTOLIC)
        assert {"gpu-trtllm-fp16", "gpu-atom-w4a4", "gpu-ms-noopt",
                "gpu-ms-optim", "gpu-ms-mtc"} <= set(GPU)
        assert known_arch_names() == sorted(ARCHS)

    def test_get_arch_unknown_lists_known(self):
        with pytest.raises(KeyError, match="unknown arch.*known:"):
            get_arch("tpu-v9")

    def test_every_substrate_has_workload_families(self):
        for sub in ("lm", "vlm", "cnn", "ssm", "gemm"):
            assert sub in workload_substrates()
            assert workload_families(sub), f"no hw families for {sub}"

    def test_workload_families_cover_substrate_registries(self):
        """CNN and SSM generators emit LayerSpecs for every family in their
        substrate registries (the ROADMAP item this PR closes)."""
        from repro.models.cnn import CNN_PROFILES
        from repro.models.ssm import SSM_PROFILES

        assert set(workload_families("cnn")) == set(CNN_PROFILES)
        assert set(workload_families("ssm")) == set(SSM_PROFILES)
        for sub in ("cnn", "ssm"):
            for family in workload_families(sub):
                workload = build_workload(sub, family)
                assert isinstance(workload, HwWorkload)
                units = workload.units(2)
                assert units and all(u.spec.d_out > 0 for u in units)

    def test_cnn_workload_is_im2col_lowered(self):
        from repro.models.cnn import CNN_PROFILES

        profile = CNN_PROFILES["resnet50"]
        units = build_workload("cnn", "resnet50").units(2)
        assert len(units) == len(profile.channels)
        assert units[0].spec.d_in == 3 * 9  # c_in * k*k at the stem
        # One streamed vector per output pixel at the full resolution.
        assert units[0].streams[0].m == profile.img_hw ** 2

    def test_ssm_workload_scans(self):
        from repro.models.ssm import SSM_PROFILES

        profile = SSM_PROFILES["vmamba-s"]
        units = build_workload("ssm", "vmamba-s").units(2)
        names = [u.spec.name.rsplit(".", 1)[1] for u in units]
        assert names == ["w_in", "w_gate_a", "w_gate_b", "w_out"]
        # Input projections repeat once per recurrence step.
        assert units[0].streams[0].repeat == profile.seq_len
        assert units[-1].streams[0].repeat == 1.0

    def test_gemm_workload_parses_family(self):
        wl = build_workload("gemm", "512x256", outlier_fraction=0.02)
        (unit,) = wl.units(2)
        assert (unit.spec.d_out, unit.spec.d_in) == (512, 256)
        with pytest.raises(KeyError, match="4096x4096"):
            build_workload("gemm", "not-a-shape")


class TestArchSpec:
    def test_area_breakdowns_sum(self):
        for name in SYSTOLIC:
            arch = ARCHS[name]
            breakdown = arch.area()
            assert breakdown.total_um2 == sum(
                c.total_um2 for c in breakdown.components
            )
            assert breakdown.total_mm2 == pytest.approx(breakdown.total_um2 / 1e6)
            assert arch.area_mm2 > 0

    def test_unknown_area_knob_lists_schema(self):
        with pytest.raises(HwParamError, match="schema"):
            ARCHS["olive"].area(n_recon=4)

    def test_param_type_violation(self):
        with pytest.raises(HwParamError, match="expects int"):
            check_hw_kwargs(ARCHS["microscopiq-v2"], {"n_recon": "many"})

    def test_sim_param_choice_violation(self):
        with pytest.raises(HwParamError, match="must be one of"):
            check_hw_kwargs(ARCHS["microscopiq-v2"], {"bit_budget": 3})

    def test_ebw_bits_is_mix_weighted(self):
        v2 = ARCHS["microscopiq-v2"]
        assert v2.ebw_bits() == pytest.approx(0.8 * 2.36 + 0.2 * 4.15)

    def test_capabilities_dict(self):
        caps = ARCHS["microscopiq-v2"].capabilities()
        assert caps["kind"] == "systolic" and caps["recon"]
        assert "n_recon" in caps["params"]


class TestSimulate:
    @pytest.mark.parametrize("arch", SYSTOLIC)
    @pytest.mark.parametrize(
        "sub,family",
        [("lm", "phi3-3.8b"), ("vlm", "vila-7b"), ("cnn", "vgg16"),
         ("ssm", "vim-s"), ("gemm", "256x256")],
    )
    def test_every_arch_simulates_every_substrate(self, arch, sub, family):
        workload = build_workload(sub, family, **FAST)
        report = simulate(arch, workload)
        assert isinstance(report, SimReport)
        assert report.cycles > 0 and report.latency_ms > 0
        assert report.energy.total_nj > 0
        assert report.stats.macs > 0
        metrics = report.metrics()
        assert metrics["substrate"] == sub and metrics["arch"] == arch

    @pytest.mark.parametrize("arch", GPU)
    def test_gpu_archs_simulate_transformers(self, arch):
        report = simulate(arch, build_workload("lm", "opt-6.7b"))
        assert report.gpu["tokens_per_s"] > 0
        assert report.metrics()["decode_ms"] == report.gpu["decode_ms"]

    def test_gpu_archs_reject_non_transformer_workloads(self):
        with pytest.raises(HwParamError, match="transformer"):
            simulate("gpu-atom-w4a4", build_workload("cnn", "resnet50"))

    def test_simulate_matches_legacy_entry_point(self):
        geom = GEOMETRIES["llama2-7b"]
        legacy = simulate_arch_inference("microscopiq-v2", geom, prefill=4, decode_tokens=8)
        report = simulate(
            "microscopiq-v2",
            build_workload("lm", "llama2-7b", prefill=4, decode_tokens=8),
        )
        assert report.cycles == legacy.cycles
        assert report.energy.total_nj == legacy.energy.total_nj

    def test_non_recon_archs_strip_outlier_traffic(self):
        report = simulate("olive", build_workload("lm", "phi3-3.8b", **FAST))
        assert report.stats.recon_accesses == 0

    def test_native_pass_reports_phases(self):
        report = simulate(
            "microscopiq-v2", build_workload("lm", "phi3-3.8b", prefill=4, decode_tokens=8)
        )
        phases = {p.phase: p for p in report.native}
        assert set(phases) == {"prefill", "decode"}
        assert phases["decode"].executions == 8.0
        assert report.native_cycles == (
            phases["prefill"].stats.cycles + 8.0 * phases["decode"].stats.cycles
        )

    def test_simulate_is_deterministic(self):
        a = run_hw_job("cnn", "resnet50", "microscopiq-v2", dict(FAST))
        b = run_hw_job("cnn", "resnet50", "microscopiq-v2", dict(FAST))
        assert a == b

    def test_arch_without_area_model_still_simulates(self):
        minimal = HwArchSpec(
            name="bare", summary="no area model",
            pack_by_bits={4: 1}, ebw_by_bits={4: 4.0},
        )
        report = simulate(minimal, build_workload("lm", "opt-6.7b", **FAST))
        assert report.cycles > 0 and report.energy.total_nj > 0
        assert report.area is None
        assert "area_mm2" not in report.metrics()

    def test_arch_knobs_reach_the_area_builder(self):
        from repro.hw import AreaBreakdown, AreaComponent, Param

        def lane_area(rows=64, cols=64, lanes=4):
            return AreaBreakdown(
                "laned", [AreaComponent("PE array", 2.0, rows * cols),
                          AreaComponent("Lanes", 10.0, lanes)]
            )

        laned = HwArchSpec(
            name="laned", summary="knobbed area",
            pack_by_bits={4: 1}, ebw_by_bits={4: 4.0},
            area_builder=lane_area,
            params=(Param("lanes", 4, (int,), "outlier lanes"),),
        )
        base = simulate(laned, build_workload("lm", "opt-6.7b", **FAST))
        wide = simulate(
            laned, build_workload("lm", "opt-6.7b", **FAST), arch_knobs={"lanes": 8}
        )
        assert wide.area.total_um2 == base.area.total_um2 + 40.0

    def test_run_hw_job_forwards_arch_knobs_and_defaults(self):
        from repro.hw import AreaBreakdown, AreaComponent, Param, register_arch

        def lane_area(rows=64, cols=64, lanes=4):
            return AreaBreakdown(
                "laned2", [AreaComponent("Lanes", 10.0, lanes)]
            )

        spec = HwArchSpec(
            name="laned2", summary="knobbed area",
            pack_by_bits={4: 1}, ebw_by_bits={4: 4.0},
            area_builder=lane_area,
            params=(Param("lanes", 6, (int,), "outlier lanes"),),
        )
        register_arch(spec)
        try:
            defaulted = run_hw_job("lm", "opt-6.7b", "laned2", dict(FAST))
            assert defaulted["area_um2"] == 60.0  # the Param default, not 4
            knobbed = run_hw_job("lm", "opt-6.7b", "laned2", dict(FAST, lanes=9))
            assert knobbed["area_um2"] == 90.0
        finally:
            ARCHS.pop("laned2", None)


class TestGoldenValues:
    """The registry path reproduces the seed-era numbers bit-for-bit."""

    def test_table5_areas(self):
        from repro.hw import compute_density_tops_mm2, gobo_area, microscopiq_area, olive_area

        m = run_hw_job("lm", "llama2-7b", "microscopiq-v2", dict(FAST))
        assert m["area_mm2"] == microscopiq_area().total_mm2 == pytest.approx(0.01278275)
        assert m["density_tops_mm2"] == compute_density_tops_mm2(
            microscopiq_area(), 64, 64, 2.0
        )
        o = run_hw_job("lm", "llama2-7b", "olive", dict(FAST))
        assert o["area_mm2"] == olive_area().total_mm2
        g = run_hw_job("lm", "llama2-7b", "gobo", dict(FAST))
        assert g["area_mm2"] == gobo_area().total_mm2 == pytest.approx(0.2160424)
        assert g["area_overhead_pct"] == gobo_area().overhead_pct(("Group PE",))

    def test_table6_throughput(self):
        from repro.gpu import token_throughput

        for method in ("trtllm-fp16", "ms-mtc"):
            m = run_hw_job("lm", "llama2-13b", f"gpu-{method}", {})
            assert m["tokens_per_s"] == token_throughput(method, "llama2-13b")

    def test_fig13_latency(self):
        iso = {"rows": 216, "cols": 256, "dram_gbps": 2039.0, "sram_gbps": 2039.0,
               "prefill": 1, "decode_tokens": 32}
        cfg = AcceleratorConfig(rows=216, cols=256, dram_gbps=2039.0, sram_gbps=2039.0)
        for arch in ("microscopiq-v1", "microscopiq-v2"):
            m = run_hw_job("lm", "llama2-7b", arch, iso)
            direct = simulate_arch_inference(
                arch, GEOMETRIES["llama2-7b"], prefill=1, decode_tokens=32, cfg=cfg
            )
            assert m["latency_ms"] == direct.latency_ms
            assert m["energy_nj"] == direct.energy.total_nj


class TestDeprecatedShim:
    def test_import_warns_and_matches(self):
        import repro.accelerator as legacy

        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            fn = legacy.simulate_arch_inference
        assert any(issubclass(w.category, DeprecationWarning) for w in caught)
        assert fn is simulate_arch_inference

    def test_legacy_archs_view_is_systolic_only(self):
        import repro.accelerator as legacy

        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            view = legacy.ARCHS
        assert set(view) == set(SYSTOLIC)

    def test_submodule_aliases(self):
        from repro.accelerator.workloads import GEOMETRIES as legacy_geoms

        assert legacy_geoms is GEOMETRIES
        assert sys.modules["repro.accelerator.systolic"] is sys.modules["repro.hw.systolic"]

    def test_unknown_attribute_raises(self):
        import repro.accelerator as legacy

        with pytest.raises(AttributeError):
            legacy.definitely_not_a_thing


class TestPipelineIntegration:
    def test_hw_spec_identity_ignores_quant_fields(self):
        a = ExperimentSpec(family="llama2-7b", arch="microscopiq-v2")
        b = a.with_(method="rtn", w_bits=2, act_bits=4, eval_sequences=99,
                    kv_bits=2, calibration="parallel")
        assert a.key() == b.key()
        assert Job(a).job_hash == Job(b).job_hash

    def test_hw_kwargs_are_identity(self):
        a = ExperimentSpec(family="llama2-7b", arch="microscopiq-v2")
        b = a.with_(hw_kwargs=(("n_recon", 2),))
        assert Job(a).job_hash != Job(b).job_hash

    def test_unknown_arch_fails_at_build(self):
        with pytest.raises(KeyError, match="unknown arch"):
            ExperimentSpec(family="llama2-7b", arch="nope")

    def test_unknown_hw_param_fails_at_build_with_schema(self):
        with pytest.raises(HwParamError, match="schema"):
            ExperimentSpec(
                family="llama2-7b", arch="olive", hw_kwargs=(("n_recon", 2),)
            )

    def test_arch_substrate_mismatch_fails_at_build(self):
        with pytest.raises(HwParamError, match="does not support"):
            ExperimentSpec(family="resnet50", substrate="cnn", arch="gpu-atom-w4a4")

    def test_hw_kwargs_without_arch_rejected(self):
        with pytest.raises(ValueError, match="hw_kwargs"):
            ExperimentSpec(family="llama2-7b", hw_kwargs=(("rows", 8),))

    def test_label_is_unique_per_setting(self):
        a = describe(ExperimentSpec(family="llama2-7b", arch="microscopiq-v2"))
        b = describe(
            ExperimentSpec(
                family="llama2-7b", arch="microscopiq-v2", hw_kwargs=(("n_recon", 2),)
            )
        )
        assert a != b and "microscopiq-v2" in a

    def test_grid_pairs_archs_with_valid_substrates(self):
        sweep = SweepSpec(
            families=("resnet50", "vmamba-s"),
            methods=(),
            substrates=("cnn", "ssm"),
            archs=("microscopiq-v2", "gpu-atom-w4a4"),
        )
        specs = sweep.specs()
        # gpu archs support lm/vlm only: just the 2 systolic jobs remain.
        assert {(s.substrate, s.family, s.arch) for s in specs} == {
            ("cnn", "resnet50", "microscopiq-v2"),
            ("ssm", "vmamba-s", "microscopiq-v2"),
        }

    def test_grid_routes_hw_kwargs_by_schema(self):
        sweep = SweepSpec(
            families=("llama2-7b",),
            methods=(),
            archs=("microscopiq-v2", "olive"),
            hw_kwargs=(("n_recon", 2), ("prefill", 1)),
        )
        by_arch = {s.arch: dict(s.hw_kwargs) for s in sweep.specs()}
        assert by_arch["microscopiq-v2"] == {"n_recon": 2, "prefill": 1}
        assert by_arch["olive"] == {"prefill": 1}  # n_recon filtered out

    def test_sweep_hw_kwargs_typo_guard(self):
        with pytest.raises(KeyError, match="not a simulation parameter"):
            SweepSpec(
                families=("llama2-7b",), methods=(),
                archs=("olive",), hw_kwargs=(("rowz", 8),),
            )

    def test_arch_params_validate(self):
        with pytest.raises(HwParamError):
            SweepSpec(
                families=("llama2-7b",), methods=(), archs=("olive",),
                arch_params={"olive": {"n_recon": 2}},
            )

    def test_hw_jobs_cache_and_match_across_executors(self, tmp_path):
        sweep = SweepSpec(
            families=("resnet50",), methods=(), substrates=("cnn",),
            archs=("microscopiq-v2", "olive"), hw_kwargs=tuple(sorted(FAST.items())),
        )
        first = run_sweep(sweep, cache_dir=str(tmp_path), executor="serial")
        assert first.ok and first.cache_hits == 0
        replay = run_sweep(sweep, cache_dir=str(tmp_path), executor="serial")
        assert replay.cache_hits == len(replay.outcomes) == 2
        threaded = run_sweep(sweep, cache_dir=None, executor="thread", workers=2)
        assert threaded.ok
        assert {o.job.job_hash: o.metrics for o in first.outcomes} == {
            o.job.job_hash: o.metrics for o in threaded.outcomes
        }

    def test_mixed_quant_and_hw_grid(self):
        sweep = SweepSpec(
            families=("opt-6.7b",), methods=("rtn",), archs=("gpu-atom-w4a4",),
        )
        kinds = {(s.method if s.arch is None else s.arch) for s in sweep.specs()}
        assert kinds == {"rtn", "gpu-atom-w4a4"}

    def test_seed_is_normalized_out_of_hw_job_identity(self):
        """The simulator is deterministic: differently-seeded sweeps must
        share hardware cache cells (quantization cells still re-key)."""
        hw = ExperimentSpec(family="llama2-7b", arch="microscopiq-v2")
        assert Job(hw, seed=0).job_hash == Job(hw, seed=7).job_hash
        quant = ExperimentSpec(family="opt-6.7b", method="rtn")
        assert Job(quant, seed=0).job_hash != Job(quant, seed=7).job_hash

    def test_gemm_probe_substrate_sweeps_from_the_grid(self, tmp_path):
        """Hardware-only workload substrates are reachable from SweepSpec
        (and therefore the CLI), including pattern families."""
        sweep = SweepSpec(
            families=("512x256",), methods=(), substrates=("gemm",),
            archs=("microscopiq-v2",), hw_kwargs=(("n_recon", 2),),
        )
        (spec,) = sweep.specs()
        assert (spec.substrate, spec.family, spec.arch) == (
            "gemm", "512x256", "microscopiq-v2"
        )
        result = run_sweep(sweep, cache_dir=str(tmp_path))
        assert result.ok
        assert result[spec]["native"]["batch"]["cycles"] > 0

    def test_gemm_substrate_without_archs_still_unknown(self):
        with pytest.raises(KeyError, match="unknown substrate"):
            SweepSpec(families=("512x256",), methods=("rtn",), substrates=("gemm",))


class TestArchVersionHashing:
    def test_version_bump_rolls_hash_and_omission_is_stable(self):
        from dataclasses import replace

        from repro.hw import register_arch

        base = ARCHS["olive"]
        spec = ExperimentSpec(family="llama2-7b", arch="olive")
        h0 = Job(spec).job_hash
        try:
            register_arch(replace(base, version="2.0"))
            assert Job(spec).job_hash != h0, "version bump must roll the hash"
            register_arch(replace(base, version=None))
            assert Job(spec).job_hash == h0, "omitted version must hash stably"
        finally:
            register_arch(base)

    def test_method_and_substrate_versions_hash(self):
        from dataclasses import replace

        from repro.core.substrate import SUBSTRATES, register_substrate
        from repro.methods import get_method, register_method

        spec = ExperimentSpec(family="opt-6.7b", method="rtn")
        h0 = Job(spec).job_hash
        base_m = get_method("rtn")
        base_s = SUBSTRATES["lm"]
        try:
            register_method(replace(base_m, version="7"))
            h1 = Job(spec).job_hash
            assert h1 != h0
            register_substrate(replace(base_s, version="3"))
            assert Job(spec).job_hash not in (h0, h1)
        finally:
            register_method(base_m)
            register_substrate(base_s)
        assert Job(spec).job_hash == h0


_ARCH_PLUGIN = """
from repro.hw import HwArchSpec, microscopiq_area

repro_plugin = HwArchSpec(
    name="toy-npu",
    summary="a plugin accelerator",
    precision_mix=((4, 1.0),),
    mac_bits=4,
    pack_by_bits={4: 1},
    ebw_by_bits={4: 4.5},
    area_builder=microscopiq_area,
    version="1",
)
"""


class TestArchPlugins:
    @pytest.fixture
    def toy_plugin(self, tmp_path, monkeypatch):
        (tmp_path / "toy_hw_plugin.py").write_text(_ARCH_PLUGIN)
        monkeypatch.syspath_prepend(str(tmp_path))
        monkeypatch.setenv("REPRO_PLUGINS", "toy_hw_plugin")
        yield
        ARCHS.pop("toy-npu", None)
        sys.modules.pop("toy_hw_plugin", None)

    def test_plugin_arch_registers_and_simulates(self, toy_plugin):
        from repro import plugins

        records = plugins.load_plugins(force=True)
        mine = [r for r in records if r.name == "toy_hw_plugin"]
        assert mine and mine[0].ok and "arch" in mine[0].kinds
        arch = get_arch("toy-npu")
        assert arch.source.startswith("env:")
        metrics = run_hw_job("lm", "opt-6.7b", "toy-npu", dict(FAST))
        assert metrics["cycles"] > 0

    def test_plugin_arch_sweeps_through_cli(self, toy_plugin, tmp_path, capsys):
        from repro import plugins
        from repro.pipeline.cli import main

        # A fresh CLI process discovers REPRO_PLUGINS at startup; in-process
        # the loader's idempotence cache survives the previous test, so
        # force the rediscovery it would do naturally.
        plugins.load_plugins(force=True)
        assert main([
            "sweep", "--families", "opt-6.7b", "--archs", "toy-npu",
            "--param", "prefill=1", "--param", "decode_tokens=1",
            "--cache-dir", str(tmp_path / "cache"), "--quiet",
        ]) == 0
        out = capsys.readouterr().out
        assert "toy-npu" in out
