"""The substrate protocol and registry: every workload class the paper covers.

The paper evaluates MicroScopiQ across four substrate classes — transformer
LMs (Table 2), VLMs (Fig. 10), CNNs and SSMs (Table 4). Each model class in
:mod:`repro.models` implements the same duck-typed *linear-layer protocol*
(``linear_names`` / ``weights`` / ``collect_calibration`` / ``set_override``
/ ``act_quant`` / ``clear_overrides``); this module makes that contract
explicit as the :class:`Substrate` protocol and registers each class in
:data:`SUBSTRATES` together with everything the experiment pipeline needs to
run it end to end:

* its model families and builder;
* its default calibration inputs (deterministic, seeded from the family
  profile like the LM corpora, so jobs stay pure functions of their spec);
* its **calibration groups** — layers whose calibration inputs are invariant
  to each other's overrides (``wq``/``wk``/``wv`` read the same RMSNorm
  output), which is what lets the quantization engine collect activations
  once per group and dispatch members in parallel while staying bit-identical
  to the sequential walk;
* its task **metric** and evaluator (perplexity / caption score / top-1 /
  sequence NLL), which is what makes
  :func:`repro.eval.harness.evaluate_setting` metric-polymorphic.

Evaluation references are always derived from the *full-precision* model of
the same family (the corpus sampled from it, its predictions, its generated
captions), so quantization error shows up as metric degradation on every
substrate, matching the relative-accuracy shape the paper reports.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Any, Callable, Dict, List, Optional, Protocol, Tuple, runtime_checkable

import numpy as np

__all__ = [
    "SUBSTRATES",
    "Substrate",
    "SubstrateSpec",
    "calibration_groups",
    "get_substrate",
    "known_substrates",
    "register_substrate",
    "substrate_families",
    "substrate_for_model",
]

_BOOTSTRAP_RESAMPLES = 64  # bootstrap draws for the LM nll_se


@runtime_checkable
class Substrate(Protocol):
    """The linear-layer protocol a quantizable model must implement.

    Formalizes what :func:`repro.quant.engine.quantize_model` consumes:
    named 2-D weight matrices, per-layer calibration capture, weight
    overrides for installing dequantized replacements, and per-layer
    activation fake-quantizers. ``isinstance(model, Substrate)`` performs a
    structural (duck-typed) check.
    """

    @property
    def linear_names(self) -> List[str]:  # forward order
        ...

    @property
    def weights(self) -> Dict[str, np.ndarray]:
        ...

    @property
    def act_quant(self) -> Dict[str, Any]:
        ...

    def collect_calibration(self, calib: Any) -> Dict[str, np.ndarray]:
        ...

    def set_override(self, name: str, weight: np.ndarray) -> None:
        ...

    def clear_overrides(self) -> None:
        ...


@dataclass(frozen=True)
class SubstrateSpec:
    """One registered substrate: builders, calibration, groups, and metric.

    Attributes:
        name: registry key (``"lm"`` / ``"vlm"`` / ``"cnn"`` / ``"ssm"``).
        paper_scope: which table/figure of the paper this substrate backs.
        metric: the primary task metric key in the evaluator's result dict
            (used by the CLI's ``--metric auto`` display resolution).
        higher_is_better: direction of ``metric`` (perplexity/NLL go down).
        families: zero-arg callable returning the known family names.
        build: ``family name -> model`` constructor.
        calibration: ``model -> calib`` default calibration inputs.
        groups: ``model -> [[name, ...], ...]`` calibration groups in
            forward order; members of one group may be quantized in
            parallel without changing results.
        evaluate: ``(model, eval_sequences, eval_seq_len, rng, **kw) ->
            metrics dict`` task evaluator.
        owns: ``model -> bool`` instance check used to resolve a model
            object back to its registered substrate.
        uses_corpus_shape: whether ``eval_sequences``/``eval_seq_len``
            actually shape this substrate's evaluation (True for the LM
            corpora; False for the fixed per-family bundles), so the
            pipeline can normalize ignored fields out of job identities.
        version: optional spec version hashed into pipeline job identities,
            so cached results invalidate when a plugin substrate's numerics
            change (builtins ride ``repro.__version__`` and leave this
            ``None`` — omitting it keeps job hashes stable).
    """

    name: str
    paper_scope: str
    metric: str
    higher_is_better: bool
    families: Callable[[], Tuple[str, ...]]
    build: Callable[[str], Any]
    calibration: Callable[[Any], Any]
    groups: Callable[[Any], List[List[str]]]
    evaluate: Callable[..., Dict[str, Any]]
    owns: Callable[[Any], bool]
    uses_corpus_shape: bool = True
    version: Optional[str] = None


SUBSTRATES: Dict[str, SubstrateSpec] = {}


def register_substrate(spec: SubstrateSpec) -> SubstrateSpec:
    """Add ``spec`` to the registry (last registration wins)."""
    SUBSTRATES[spec.name] = spec
    return spec


def get_substrate(name: str) -> SubstrateSpec:
    """Look up a substrate by name; tries the plugin loader once on a miss
    and raises with the known list if the name is still absent."""
    try:
        return SUBSTRATES[name]
    except KeyError:
        pass
    from .. import plugins

    plugins.load_plugins()
    try:
        return SUBSTRATES[name]
    except KeyError:
        known = ", ".join(sorted(SUBSTRATES))
        raise KeyError(f"unknown substrate {name!r}; known: {known}") from None


def known_substrates() -> List[str]:
    return sorted(SUBSTRATES)


def substrate_families(name: str) -> Tuple[str, ...]:
    """The family names a substrate can build."""
    return tuple(get_substrate(name).families())


def substrate_for_model(model: Any) -> Optional[SubstrateSpec]:
    """The registered substrate owning ``model``, or ``None``."""
    for spec in SUBSTRATES.values():
        if spec.owns(model):
            return spec
    return None


def calibration_groups(model: Any) -> List[List[str]]:
    """Calibration groups for ``model``; singletons for unregistered models.

    The singleton fallback is always safe: one layer per group degenerates
    to the plain sequential walk.
    """
    spec = substrate_for_model(model)
    if spec is not None:
        return spec.groups(model)
    return [[name] for name in model.linear_names]


# --------------------------------------------------------------------- LM ---

def _lm_families() -> Tuple[str, ...]:
    from ..models.generator import MODEL_FAMILIES

    return tuple(MODEL_FAMILIES)


def _lm_build(family: str):
    from ..models.transformer import build_model

    return build_model(family)


def _lm_calibration(model):
    from ..eval.corpus import calibration_tokens

    return calibration_tokens(model)


def _transformer_groups(n_layers: int) -> List[List[str]]:
    """Per block: [wq wk wv] share the attention-input RMSNorm activations,
    [w1 w3] share the MLP-input ones; wo and w2 read outputs of their group
    predecessors and must wait for them."""
    groups: List[List[str]] = []
    for i in range(n_layers):
        pre = f"layers.{i}."
        groups.append([pre + "wq", pre + "wk", pre + "wv"])
        groups.append([pre + "wo"])
        groups.append([pre + "w1", pre + "w3"])
        groups.append([pre + "w2"])
    return groups


def _lm_groups(model) -> List[List[str]]:
    return _transformer_groups(model.profile.n_layers)


def _lm_evaluate(model, eval_sequences, eval_seq_len, rng, tasks=None, **_) -> Dict[str, Any]:
    """Perplexity over the family's held-out corpus, with a bootstrap SE.

    ``tasks`` (an ``eval_kwargs`` knob) additionally scores the named
    zero-shot ranking tasks of :data:`~repro.eval.tasks.LM_TASKS` against a
    fresh full-precision reference (which defines the labels), adding one
    ``task:<name>`` accuracy per task — the Table 3 pipeline path.
    """
    from ..eval.corpus import eval_corpus
    from ..eval.perplexity import nll_per_sequence

    corpus = eval_corpus(model, eval_sequences, eval_seq_len)
    seq_nll = nll_per_sequence(model, corpus)
    metrics: Dict[str, Any] = {"nll": float(np.mean(seq_nll))}
    metrics["ppl"] = float(np.exp(metrics["nll"]))
    resamples = rng.integers(0, len(seq_nll), size=(_BOOTSTRAP_RESAMPLES, len(seq_nll)))
    metrics["nll_se"] = float(np.std(np.mean(seq_nll[resamples], axis=1)))
    if tasks:
        from ..eval.tasks import task_accuracy

        for name in tasks:
            prompts, candidates = _lm_task_labels(model.profile.name, name)
            metrics[f"task:{name}"] = task_accuracy(model, prompts, candidates)
    return metrics


@lru_cache(maxsize=64)
def _lm_task_labels(family: str, task: str):
    """(prompts, candidates) for one (family, task) — labels come from the
    FP reference, are deterministic in the family profile, and are shared by
    every method/setting job of a session, so the FP model is built once per
    pair instead of once per task-scored job."""
    from ..eval.tasks import LM_TASKS, task_labels
    from ..models.transformer import build_model

    return task_labels(build_model(family), LM_TASKS[task])


def _lm_owns(model) -> bool:
    from ..models.transformer import TransformerLM

    return isinstance(model, TransformerLM)


# -------------------------------------------------------------------- VLM ---

# Fixed-size evaluation bundle (Fig. 10 analog): the FP model's greedy
# captions at the maximum shot count are the scoring reference. Kept
# independent of the eval_sequences/eval_seq_len knobs (those shape the LM
# corpora) so every VLM job shares one deterministic bundle per family.
_VLM_QUERIES = 16
_VLM_REF_SHOTS = 16
_VLM_CALIB_SHOTS = 4
_VLM_SEED_OFFSET = 11_000


@lru_cache(maxsize=8)
def _vlm_bundle(family: str):
    """(shots, query_feats, reference captions) for one VLM family."""
    from ..models.vlm import CAPTION_LEN, build_vlm

    vlm = build_vlm(family)
    rng = np.random.default_rng(vlm.profile.seed + _VLM_SEED_OFFSET)
    shots = [
        (
            rng.normal(0, 1, (_VLM_QUERIES, vlm.d_img)),
            rng.integers(0, vlm.profile.vocab, (_VLM_QUERIES, CAPTION_LEN)),
        )
        for _ in range(_VLM_REF_SHOTS)
    ]
    query = rng.normal(0, 1, (_VLM_QUERIES, vlm.d_img))
    reference = vlm.generate_captions(shots, query)
    return shots, query, reference


def _vlm_families() -> Tuple[str, ...]:
    from ..models.vlm import VLM_PROFILES

    return tuple(VLM_PROFILES)


def _vlm_build(family: str):
    from ..models.vlm import build_vlm

    return build_vlm(family)


def _vlm_calibration(model):
    shots, query, _ = _vlm_bundle(model.profile.name)
    return shots[:_VLM_CALIB_SHOTS], query


def _vlm_groups(model) -> List[List[str]]:
    return _transformer_groups(model.profile.n_layers)


def _vlm_evaluate(model, eval_sequences, eval_seq_len, rng, shots=None, **_):
    """Teacher-forced caption agreement vs. the FP reference (CIDEr proxy).

    ``shots`` (an ``eval_kwargs`` knob) is the in-context shot count of
    Fig. 10's x-axis; default is the reference's own shot count.
    """
    from ..models.vlm import teacher_forced_agreement

    shot_list, query, reference = _vlm_bundle(model.profile.name)
    k = _VLM_REF_SHOTS if shots is None else int(shots)
    if not 0 <= k <= _VLM_REF_SHOTS:
        raise ValueError(f"shots must be in [0, {_VLM_REF_SHOTS}], got {k}")
    score = teacher_forced_agreement(model, shot_list[:k], query, reference)
    return {"caption_score": float(score), "shots": k}


def _vlm_owns(model) -> bool:
    from ..models.vlm import VisionLanguageModel

    return isinstance(model, VisionLanguageModel)


# -------------------------------------------------------------------- CNN ---

_CNN_CALIB = 16
_CNN_EVAL = 192
_CNN_SEED_OFFSET = 12_000


@lru_cache(maxsize=8)
def _cnn_bundle(family: str):
    """(calib images, test images, FP top-1 predictions) for one CNN."""
    from ..models.cnn import build_cnn

    net = build_cnn(family)
    hw = net.profile.img_hw
    rng = np.random.default_rng(net.profile.seed + _CNN_SEED_OFFSET)
    calib = rng.normal(0, 1, (_CNN_CALIB, 3, hw, hw))
    test = rng.normal(0, 1, (_CNN_EVAL, 3, hw, hw))
    fp_pred = _batched_predict(net, test)
    return calib, test, fp_pred


def _batched_predict(net, images: np.ndarray, batch: int = 64) -> np.ndarray:
    """Chunked ``predict`` so im2col buffers stay small."""
    parts = [net.predict(images[i : i + batch]) for i in range(0, len(images), batch)]
    return np.concatenate(parts)


def _cnn_families() -> Tuple[str, ...]:
    from ..models.cnn import CNN_PROFILES

    return tuple(CNN_PROFILES)


def _cnn_build(family: str):
    from ..models.cnn import build_cnn

    return build_cnn(family)


def _cnn_calibration(model):
    calib, _, _ = _cnn_bundle(model.profile.name)
    return calib


def _cnn_groups(model) -> List[List[str]]:
    # Each conv feeds the next; fully sequential.
    return [[name] for name in model.linear_names]


def _cnn_evaluate(model, eval_sequences, eval_seq_len, rng, **_) -> Dict[str, Any]:
    """Relative top-1: agreement (%) with the FP model's predictions."""
    _, test, fp_pred = _cnn_bundle(model.profile.name)
    pred = _batched_predict(model, test)
    return {"top1": 100.0 * float(np.mean(pred == fp_pred))}


def _cnn_owns(model) -> bool:
    from ..models.cnn import ConvNet

    return isinstance(model, ConvNet)


# -------------------------------------------------------------------- SSM ---

_SSM_CALIB = 16
_SSM_EVAL = 192
_SSM_SEED_OFFSET = 13_000


@lru_cache(maxsize=8)
def _ssm_bundle(family: str):
    """(calib seqs, test seqs, FP predictions) for one SSM family."""
    from ..models.ssm import build_ssm

    net = build_ssm(family)
    p = net.profile
    rng = np.random.default_rng(p.seed + _SSM_SEED_OFFSET)
    calib = rng.normal(0, 1, (_SSM_CALIB, p.seq_len, p.d_model))
    test = rng.normal(0, 1, (_SSM_EVAL, p.seq_len, p.d_model))
    fp_pred = net.predict(test)
    return calib, test, fp_pred


def _ssm_families() -> Tuple[str, ...]:
    from ..models.ssm import SSM_PROFILES

    return tuple(SSM_PROFILES)


def _ssm_build(family: str):
    from ..models.ssm import build_ssm

    return build_ssm(family)


def _ssm_calibration(model):
    calib, _, _ = _ssm_bundle(model.profile.name)
    return calib


def _ssm_groups(model) -> List[List[str]]:
    # The three input projections read the raw per-step input; the output
    # projection reads the recurrent state they produce.
    return [["w_in", "w_gate_a", "w_gate_b"], ["w_out"]]


def _ssm_evaluate(model, eval_sequences, eval_seq_len, rng, **_) -> Dict[str, Any]:
    """Sequence NLL of the FP model's labels under the (quantized) model.

    The recurrence compounds weight error across the sequence, so NLL is the
    sensitive primary metric; ``top1`` agreement rides along for the Table 4
    comparison.
    """
    _, test, fp_pred = _ssm_bundle(model.profile.name)
    logits = model.forward(test)
    logits = logits - np.max(logits, axis=-1, keepdims=True)
    logp = logits - np.log(np.sum(np.exp(logits), axis=-1, keepdims=True))
    nll = -float(np.mean(logp[np.arange(len(fp_pred)), fp_pred]))
    top1 = 100.0 * float(np.mean(np.argmax(logits, axis=-1) == fp_pred))
    return {"nll": nll, "top1": top1}


def _ssm_owns(model) -> bool:
    from ..models.ssm import SelectiveScanModel

    return isinstance(model, SelectiveScanModel)


# ---------------------------------------------------------------- registry --

register_substrate(
    SubstrateSpec(
        name="lm",
        paper_scope="Table 2/3/7 (perplexity, zero-shot tasks, ablations)",
        metric="ppl",
        higher_is_better=False,
        families=_lm_families,
        build=_lm_build,
        calibration=_lm_calibration,
        groups=_lm_groups,
        evaluate=_lm_evaluate,
        owns=_lm_owns,
    )
)

register_substrate(
    SubstrateSpec(
        name="vlm",
        paper_scope="Fig. 10/11 (multi-shot COCO captioning)",
        metric="caption_score",
        higher_is_better=True,
        families=_vlm_families,
        build=_vlm_build,
        calibration=_vlm_calibration,
        groups=_vlm_groups,
        evaluate=_vlm_evaluate,
        owns=_vlm_owns,
        uses_corpus_shape=False,
    )
)

register_substrate(
    SubstrateSpec(
        name="cnn",
        paper_scope="Table 4 (ResNet50/VGG16 top-1)",
        metric="top1",
        higher_is_better=True,
        families=_cnn_families,
        build=_cnn_build,
        calibration=_cnn_calibration,
        groups=_cnn_groups,
        evaluate=_cnn_evaluate,
        owns=_cnn_owns,
        uses_corpus_shape=False,
    )
)

register_substrate(
    SubstrateSpec(
        name="ssm",
        paper_scope="Table 4 (VMamba/Vim generality)",
        metric="nll",
        higher_is_better=False,
        families=_ssm_families,
        build=_ssm_build,
        calibration=_ssm_calibration,
        groups=_ssm_groups,
        evaluate=_ssm_evaluate,
        owns=_ssm_owns,
        uses_corpus_shape=False,
    )
)
