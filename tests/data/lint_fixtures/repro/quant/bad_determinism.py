"""Lint fixture: every determinism rule firing once in a kernel-scope module.

Never imported — parsed only by ``tests/test_analysis.py``. The ``repro/``
directory component is what puts it in the checker's kernel scope.
"""

import os
import time

import numpy as np


def stamp():
    return time.time()


def jitter(weights):
    noise = np.random.rand(*weights.shape)
    return weights + noise, os.urandom(8)


def order(names):
    return [n for n in {str(x) for x in names}]


def identity_key(obj):
    return id(obj)
