"""The ``repro-sweep`` command line: sweep, show, clean."""

from __future__ import annotations

import json

import pytest

from repro.pipeline.cli import main


def test_cli_sweep_show_clean_cycle(tmp_path, capsys):
    cache = str(tmp_path / "cache")
    out_json = str(tmp_path / "records.json")
    argv = [
        "sweep",
        "--families", "opt-6.7b",
        "--methods", "fp16", "rtn",
        "--w-bits", "4",
        "--eval-sequences", "8", "--eval-seq-len", "24",
        "--cache-dir", cache,
        "--executor", "serial",
        "--json", out_json,
        "--quiet",
    ]
    assert main(argv) == 0
    first = capsys.readouterr().out
    assert "2/2 jobs" in first and "0 cache hits" in first
    assert "rtn" in first and "opt-6.7b" in first

    with open(out_json) as f:
        dump = json.load(f)
    assert dump["telemetry"]["failures"] == 0
    assert {r["job"]["method"] for r in dump["records"]} == {"fp16", "rtn"}
    assert all(r["metrics"]["ppl"] > 0 for r in dump["records"])

    # Identical re-run is answered from the cache.
    assert main(argv) == 0
    assert "2 cache hits" in capsys.readouterr().out

    assert main(["show", "--cache-dir", cache]) == 0
    shown = capsys.readouterr().out
    assert "2 results" in shown and "ppl=" in shown

    assert main(["clean", "--cache-dir", cache]) == 0
    assert "removed 2" in capsys.readouterr().out
    assert main(["show", "--cache-dir", cache]) == 0
    assert "0 results" in capsys.readouterr().out


def test_cli_rejects_unknown_method_and_family(tmp_path, capsys):
    rc = main(["sweep", "--families", "opt-6.7b", "--methods", "warp-drive",
               "--cache-dir", str(tmp_path)])
    assert rc == 2
    assert "unknown method" in capsys.readouterr().err
    rc = main(["sweep", "--families", "gpt-9", "--methods", "rtn",
               "--cache-dir", str(tmp_path)])
    assert rc == 2
    assert "unknown family" in capsys.readouterr().err


def test_cli_requires_subcommand():
    with pytest.raises(SystemExit):
        main([])
