"""Synthetic foundation-model weight generation with planted outliers.

The paper's accuracy results hinge on the *distribution* of weights —
Gaussian inliers plus large-magnitude outliers, a measurable fraction of
which are adjacent (Fig. 2a) — not on web-scale pretraining. Each model
family below is an analog of one of the paper's evaluation models: same
relative size ordering, outlier percentage, and adjacent-outlier share
calibrated to Fig. 2(a) (modern FMs: 1–5% outliers, >0.5% adjacent;
OPT-era models: almost no adjacent outliers).

Weight matrices are orthogonal-ish random maps (so activations stay well
conditioned through depth) with outliers planted at family-specific rates.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["FamilyProfile", "MODEL_FAMILIES", "plant_outliers", "make_weight"]


@dataclass(frozen=True)
class FamilyProfile:
    """Analog of one paper model: architecture scale + outlier demographics."""

    name: str
    paper_model: str
    d_model: int
    n_layers: int
    n_heads: int
    d_ff: int
    vocab: int
    outlier_pct: float  # % of weights that are outliers
    adjacent_pct: float  # % of weights in adjacent-outlier pairs
    logit_gain: float  # sharper logits = lower (better) baseline PPL
    seed: int


# Ordered as Table 2's columns. Sizes are scaled-down stand-ins; what is
# preserved is the ordering of capacity and the outlier demographics.
MODEL_FAMILIES: dict[str, FamilyProfile] = {
    p.name: p
    for p in [
        FamilyProfile("opt-6.7b", "OPT-6.7B", 96, 2, 4, 256, 160, 0.8, 0.02, 0.65, 101),
        FamilyProfile("opt-175b", "OPT-175B", 160, 3, 8, 448, 160, 0.7, 0.02, 0.80, 102),
        FamilyProfile("llama2-7b", "LLaMA-2-7B", 128, 2, 4, 352, 160, 1.0, 0.30, 0.80, 103),
        FamilyProfile("llama2-13b", "LLaMA-2-13B", 144, 3, 4, 384, 160, 1.1, 0.35, 0.90, 104),
        FamilyProfile("llama2-70b", "LLaMA-2-70B", 192, 3, 8, 512, 160, 1.2, 0.40, 1.00, 105),
        FamilyProfile("llama3-8b", "LLaMA-3-8B", 128, 2, 4, 352, 160, 1.4, 0.55, 0.85, 106),
        FamilyProfile("llama3-70b", "LLaMA-3-70B", 192, 3, 8, 512, 160, 1.3, 0.50, 1.00, 107),
        FamilyProfile("mixtral-8x7b", "Mixtral-8x7B", 160, 2, 8, 448, 160, 1.2, 0.40, 0.90, 108),
        FamilyProfile("phi3-3.8b", "Phi-3-3.8B", 112, 2, 4, 320, 160, 0.9, 0.25, 0.75, 109),
        FamilyProfile("phi3-14b", "Phi-3-14B", 144, 3, 4, 416, 160, 1.0, 0.30, 0.90, 110),
    ]
}


def plant_outliers(
    weights: np.ndarray,
    outlier_pct: float,
    adjacent_pct: float,
    rng: np.random.Generator,
    magnitude_range: tuple[float, float] = (3.5, 6.5),
) -> np.ndarray:
    """Scale a fraction of weights into the 3σ+ outlier regime, in place.

    ``adjacent_pct`` of the weights are placed as contiguous outlier *pairs*
    along the input (dot-product) dimension — the configuration that defeats
    OliVe's victim-pair scheme. Magnitudes are uniform multiples of the
    column's base σ, sign-preserving.
    """
    w = weights
    sigma = float(np.std(w))
    n = w.size
    n_adj_pairs = int(round(n * adjacent_pct / 100.0 / 2.0))
    n_single = max(0, int(round(n * outlier_pct / 100.0)) - 2 * n_adj_pairs)

    d_out, d_in = w.shape
    flat_idx = rng.choice(n, size=n_single, replace=False)
    mags = rng.uniform(*magnitude_range, size=n_single) * sigma
    signs = rng.choice([-1.0, 1.0], size=n_single)
    w.ravel()[flat_idx] = mags * signs

    for _ in range(n_adj_pairs):
        r = rng.integers(0, d_out)
        c = rng.integers(0, d_in - 1)
        pair_mags = rng.uniform(*magnitude_range, size=2) * sigma
        pair_signs = rng.choice([-1.0, 1.0], size=2)
        w[r, c] = pair_mags[0] * pair_signs[0]
        w[r, c + 1] = pair_mags[1] * pair_signs[1]
    return w


def make_weight(
    d_out: int,
    d_in: int,
    rng: np.random.Generator,
    outlier_pct: float = 0.0,
    adjacent_pct: float = 0.0,
    gain: float = 1.0,
) -> np.ndarray:
    """Random weight with near-orthogonal columns + planted outliers.

    Base scale follows the usual ``1/sqrt(d_in)`` fan-in initialization so
    stacked layers neither explode nor vanish; ``gain`` adjusts it.
    """
    w = rng.normal(0.0, 1.0, (d_out, d_in)) * (gain / np.sqrt(d_in))
    if outlier_pct > 0.0:
        plant_outliers(w, outlier_pct, adjacent_pct, rng)
    return w
