"""Packed representation of a MicroScopiQ-quantized layer.

A :class:`PackedLayer` records everything the paper's off-chip layout
(Fig. 5) stores — the aligned ``bb``-bit code grid plus hardware-managed
metadata (per-MaB inlier scale exponents, per-μB MXScale and permutation
lists) — alongside the value-level reconstruction used for accuracy
evaluation and the structural maps the accelerator simulator schedules from.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

import numpy as np

from ..formats.ebw import ebw_inlier, ebw_outlier
from .config import MicroScopiQConfig

__all__ = ["PackedLayer", "PermEntry"]

# (upper_half_location, lower_half_location) within a micro-block — one entry
# of the paper's 6-bit {Upper_loc, Lower_loc} permutation-list element.
PermEntry = Tuple[int, int]


@dataclass
class PackedLayer:
    """A quantized ``[d_out, d_in]`` weight matrix with outlier metadata.

    Attributes:
        dequant: value-level reconstruction; pruned slots are exactly 0.
        config: the quantization configuration that produced this layer.
        inlier_scale_exp: ``Isf`` per (row, macro-block), int32.
        outlier_mask: True where the element was kept as a high-precision
            outlier (its Upper half occupies the original slot).
        pruned_mask: True where an inlier was pruned to host an outlier's
            Lower half.
        ub_outlier_count: outliers per (row, micro-block), uint8.
        ub_scale: per-(row, μB) packed MXScale ``(level1_exp, μX)``; rows of
            ``-128`` where the μB has no outliers.
        perm_lists: ``{(row, ub_index): [(upper_loc, lower_loc), ...]}`` —
            locations are element offsets inside the micro-block.
    """

    dequant: np.ndarray
    config: MicroScopiQConfig
    inlier_scale_exp: np.ndarray
    outlier_mask: np.ndarray
    pruned_mask: np.ndarray
    ub_outlier_count: np.ndarray
    ub_scale: np.ndarray
    perm_lists: Dict[Tuple[int, int], List[PermEntry]] = field(default_factory=dict)

    @property
    def shape(self) -> Tuple[int, int]:
        return self.dequant.shape

    @property
    def d_out(self) -> int:
        return self.dequant.shape[0]

    @property
    def d_in(self) -> int:
        return self.dequant.shape[1]

    @property
    def n_outliers(self) -> int:
        return int(self.outlier_mask.sum())

    @property
    def n_pruned(self) -> int:
        return int(self.pruned_mask.sum())

    def outlier_ub_fraction(self) -> float:
        """Fraction of micro-blocks containing at least one outlier."""
        return float(np.mean(self.ub_outlier_count > 0))

    def ebw(self) -> float:
        """Effective bit-width of this layer per Eq. 4."""
        bb = self.config.bit_budget
        bu = self.config.micro_block
        frac = self.outlier_ub_fraction()
        return frac * ebw_outlier(bb, bu) + (1.0 - frac) * ebw_inlier(bb)

    def storage_bits(self) -> int:
        """Total stored bits: code grid + per-μB metadata (for memory sims)."""
        return int(round(self.ebw() * self.dequant.size))

    def rows_with_outliers_per_ub(self) -> np.ndarray:
        """Bool ``[d_out, n_ubs]`` map: which (row, μB) pairs need ReCoN."""
        return self.ub_outlier_count > 0

    def split_rows(self, sizes: List[int]) -> List[PackedLayer]:
        """Split into consecutive row bands of the given sizes.

        The engine's shape-batched dispatch stacks several layers' weight
        rows, quantizes once, and splits the packed result back per layer.
        Every per-row field is row-sliced (views — the quantization math is
        exactly row-independent for batchable methods, so each band equals
        the layer quantized alone); ``perm_lists`` keys are re-based to the
        band's local row indices.
        """
        if sum(sizes) != self.d_out:
            raise ValueError(
                f"split_rows sizes {sizes} must sum to d_out={self.d_out}"
            )
        parts: List[PackedLayer] = []
        lo = 0
        for n in sizes:
            hi = lo + n
            parts.append(
                PackedLayer(
                    dequant=self.dequant[lo:hi],
                    config=self.config,
                    inlier_scale_exp=self.inlier_scale_exp[lo:hi],
                    outlier_mask=self.outlier_mask[lo:hi],
                    pruned_mask=self.pruned_mask[lo:hi],
                    ub_outlier_count=self.ub_outlier_count[lo:hi],
                    ub_scale=self.ub_scale[lo:hi],
                    perm_lists={
                        (r - lo, u): entries
                        for (r, u), entries in self.perm_lists.items()
                        if lo <= r < hi
                    },
                )
            )
            lo = hi
        return parts

    def forward(self, x: np.ndarray) -> np.ndarray:
        """Apply the quantized layer: ``x @ W_q^T`` for ``x [..., d_in]``."""
        return x @ self.dequant.T

    def reconstruction_error(self, reference: np.ndarray, calib: np.ndarray | None = None) -> float:
        """Relative error vs. ``reference`` weights.

        Without calibration data this is the Frobenius-norm weight error;
        with ``calib [n, d_in]`` it is the paper's layer-output proxy error
        ``||(W - Q) X^T|| / ||W X^T||``.
        """
        diff = reference - self.dequant
        if calib is None:
            return float(np.linalg.norm(diff) / max(np.linalg.norm(reference), 1e-12))
        num = np.linalg.norm(calib @ diff.T)
        den = max(float(np.linalg.norm(calib @ reference.T)), 1e-12)
        return float(num / den)
