"""End-to-end sweep behavior: caching, determinism, parallel speedup.

The last test is the subsystem's acceptance gate: a ≥24-job sweep through
the process pool must beat the serial executor when the machine has the
cores for it, and an immediate identical re-run must be answered entirely
from the content-addressed cache with equal results.
"""

from __future__ import annotations

import os
import time

import pytest

from repro.pipeline import ExperimentSpec, SweepSpec, run_sweep

CHEAP = dict(eval_sequences=8, eval_seq_len=24)


def _usable_cpus() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:
        return os.cpu_count() or 1


def _fail_on_w3(job):
    from repro.pipeline.runner import execute_job

    if job.spec.w_bits == 3:
        raise ValueError("w3 kernel bug")
    return execute_job(job)


def test_run_sweep_end_to_end_with_cache(tmp_path):
    spec = SweepSpec(
        families=("opt-6.7b",), methods=("fp16", "rtn"), w_bits=(4, 2), **CHEAP
    )
    first = run_sweep(spec, cache_dir=str(tmp_path), executor="serial")
    assert first.ok and first.cache_hits == 0
    ppl = first.pivot("family", "method", metric="ppl")
    assert ppl["opt-6.7b"]["rtn"] > ppl["opt-6.7b"]["fp16"] > 1.0

    again = run_sweep(spec, cache_dir=str(tmp_path), executor="serial")
    assert again.hit_rate == 1.0
    assert again.metrics_by_hash() == first.metrics_by_hash()
    assert again.telemetry["computed"] == 0

    # A partially-overlapping sweep only computes the new cells.
    wider = SweepSpec(
        families=("opt-6.7b",), methods=("fp16", "rtn"), w_bits=(4, 2, 8), **CHEAP
    )
    partial = run_sweep(wider, cache_dir=str(tmp_path), executor="serial")
    assert partial.telemetry["computed"] == 1
    assert partial.cache_hits == len(first.outcomes)


def test_sweep_seed_invalidates_cache(tmp_path):
    spec = SweepSpec(families=("opt-6.7b",), methods=("rtn",), seed=0, **CHEAP)
    run_sweep(spec, cache_dir=str(tmp_path), executor="serial")
    reseeded = SweepSpec(families=("opt-6.7b",), methods=("rtn",), seed=1, **CHEAP)
    result = run_sweep(reseeded, cache_dir=str(tmp_path), executor="serial")
    assert result.cache_hits == 0


def test_failures_are_reported_and_never_cached(tmp_path):
    spec = SweepSpec(families=("opt-6.7b",), methods=("rtn",), w_bits=(2, 3), **CHEAP)
    broken = run_sweep(
        spec, cache_dir=str(tmp_path), executor="serial", kernel=_fail_on_w3
    )
    assert not broken.ok
    assert len(broken.failures()) == 1
    assert broken.failures()[0].error["type"] == "ValueError"
    with pytest.raises(KeyError, match="failed"):
        broken[broken.failures()[0].job.spec]

    # The fixed kernel recomputes the failed cell (failures are not cached)
    # while the good cell comes back as a hit.
    fixed = run_sweep(spec, cache_dir=str(tmp_path), executor="serial")
    assert fixed.ok
    assert fixed.cache_hits == 1 and fixed.telemetry["computed"] == 1


def test_result_aggregation_helpers():
    spec = SweepSpec(families=("opt-6.7b",), methods=("fp16", "rtn"), w_bits=(4, 2), **CHEAP)
    result = run_sweep(spec, executor="serial")
    assert result.value(method="fp16") == pytest.approx(
        result.pivot()["opt-6.7b"]["fp16"]
    )
    table = result.as_table("method", "w_bits", metric="ppl")
    assert ("rtn", 2) in table and ("rtn", 4) in table
    with pytest.raises(KeyError, match="expected 1"):
        result.value(method="rtn")  # ambiguous: two bit settings
    labels = result.by_label(metric="ppl")
    # Non-default eval shapes are part of the label (distinct settings must
    # never collide in label-keyed views).
    assert "opt-6.7b/rtn W2A16 [ev8x24]" in labels


def test_explicit_spec_lists_and_labels():
    steps = [
        ExperimentSpec(family="opt-6.7b", label="reference", **CHEAP),
        ExperimentSpec(
            family="opt-6.7b", method="microscopiq", w_bits=2,
            quant_kwargs={"compensate": False, "inlier_bits": 2}, label="no-comp", **CHEAP
        ),
    ]
    result = run_sweep(steps, executor="serial")
    assert result.ok
    assert set(result.by_label()) == {"reference", "no-comp"}
    assert result[steps[1]]["ppl"] > result[steps[0]]["ppl"]


def test_acceptance_speedup_and_cache_hits(tmp_path):
    """ISSUE acceptance: ≥24 jobs, process pool vs serial, then 100% hits."""
    spec = SweepSpec(
        families=("opt-6.7b",),
        methods=("rtn",),
        w_bits=(2, 3, 4, 5, 6, 8),
        group_sizes=(32, 64, 128, 256),
        **CHEAP,
    )
    jobs = spec.jobs()
    assert len(jobs) >= 24

    t0 = time.perf_counter()
    serial = run_sweep(spec, cache_dir=None, executor="serial")
    t_serial = time.perf_counter() - t0

    t0 = time.perf_counter()
    parallel = run_sweep(spec, cache_dir=str(tmp_path), executor="process", workers=None)
    t_parallel = time.perf_counter() - t0

    assert serial.ok and parallel.ok
    # Deterministic per-job seeding: serial and process-pool sweeps are
    # bit-identical, scheduling order notwithstanding.
    assert serial.metrics_by_hash() == parallel.metrics_by_hash()

    cpus = _usable_cpus()
    if cpus >= 4:
        # "Measurably faster" — conservative bound; the win grows with cores.
        assert t_parallel < t_serial * 0.9, (
            f"process pool ({t_parallel:.2f}s on {cpus} CPUs) not faster "
            f"than serial ({t_serial:.2f}s)"
        )
    elif cpus >= 2:
        # On 2-3 (possibly shared/loaded) cores, fork + pool startup can eat
        # most of the win for short jobs; only guard against a pathological
        # slowdown so CI runners don't flake.
        assert t_parallel < t_serial * 1.5, (
            f"process pool ({t_parallel:.2f}s on {cpus} CPUs) pathologically "
            f"slower than serial ({t_serial:.2f}s)"
        )

    # Immediate identical re-run: pure cache, equal results.
    rerun = run_sweep(spec, cache_dir=str(tmp_path), executor="process")
    assert rerun.hit_rate == 1.0
    assert rerun.telemetry["computed"] == 0
    assert rerun.metrics_by_hash() == parallel.metrics_by_hash()
