"""Persistent run ledger: one JSONL record per sweep, queryable after the fact.

Every :func:`~repro.pipeline.runner.run_sweep` against a cache directory
appends one record to ``<cache>/runs/runs.jsonl`` — the sweep's spec digest,
executor, per-job outcomes (hash, label, kind, seconds, cache/fail status),
the counter delta the sweep produced, and (when tracing was on) the full
span tree. The sweep used to evaporate the moment its process exited; the
ledger is what ``repro-sweep report`` / ``repro-sweep trace`` read, and the
substrate the planned ``repro-serve`` dashboard and the perf-trajectory lane
query.

Records are append-only, one JSON object per line, written with a single
``os.write`` so concurrent sweeps against one cache interleave at line
granularity; unreadable lines are skipped on read (the result-cache
corruption philosophy). :func:`validate_record` is the schema check CI runs
against freshly emitted ledgers.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path
from typing import Any, Dict, Iterator, List, Optional

from .trace import span_seconds, span_self_seconds, walk_spans

__all__ = [
    "LEDGER_SCHEMA",
    "RunLedger",
    "new_run_id",
    "render_run",
    "render_span_tree",
    "validate_record",
]

#: Current schema. 2 added multi-host attribution: a top-level ``hostname``
#: and a per-computed-job ``worker`` (``host:pid-N`` for distributed runs,
#: ``pid-N`` for local pools). Both are additive and optional, so schema-1
#: records written by older versions still validate.
LEDGER_SCHEMA = 2

_KNOWN_SCHEMAS = (None, 1, LEDGER_SCHEMA)

#: Required top-level fields and their types (the CI-validated contract).
_REQUIRED = {
    "schema": int,
    "run_id": str,
    "started_at": (int, float),
    "wall_s": (int, float),
    "spec_digest": str,
    "executor": str,
    "n_jobs": int,
    "cache_hits": int,
    "failures": int,
    "traced": bool,
    "counters": dict,
    "jobs": list,
}

_JOB_REQUIRED = {
    "hash": str,
    "label": str,
    "kind": str,
    "ok": bool,
    "from_cache": bool,
    "seconds": (int, float),
}


def new_run_id(spec_digest: str, started_at: Optional[float] = None) -> str:
    """A human-sortable run id: UTC timestamp + spec digest + pid.

    The pid disambiguates two sweeps of the same spec landing in the same
    second (parallel CI shards against one cache).
    """
    stamp = time.strftime(
        "%Y%m%dT%H%M%S", time.gmtime(started_at if started_at is not None else time.time())
    )
    return f"{stamp}-{spec_digest[:8]}-{os.getpid()}"


def validate_record(record: Any) -> List[str]:
    """Schema errors of one ledger record (empty list = valid)."""
    errors: List[str] = []
    if not isinstance(record, dict):
        return [f"record is {type(record).__name__}, expected object"]
    for name, kinds in _REQUIRED.items():
        if name not in record:
            errors.append(f"missing field {name!r}")
        elif not isinstance(record[name], kinds) or isinstance(record[name], bool) != (
            kinds is bool
        ):
            errors.append(
                f"field {name!r} is {type(record[name]).__name__}, "
                f"expected {kinds.__name__ if isinstance(kinds, type) else '/'.join(k.__name__ for k in kinds)}"
            )
    if record.get("schema") not in _KNOWN_SCHEMAS:
        errors.append(f"unknown schema version {record.get('schema')!r}")
    if "hostname" in record and not isinstance(record["hostname"], str):
        errors.append(
            f"field 'hostname' is {type(record['hostname']).__name__}, expected str"
        )
    for i, job in enumerate(record.get("jobs") or []):
        if not isinstance(job, dict):
            errors.append(f"jobs[{i}] is {type(job).__name__}, expected object")
            continue
        for name, kinds in _JOB_REQUIRED.items():
            if name not in job:
                errors.append(f"jobs[{i}] missing field {name!r}")
            elif not isinstance(job[name], kinds):
                errors.append(f"jobs[{i}].{name} has wrong type {type(job[name]).__name__}")
        if "worker" in job and not isinstance(job["worker"], str):
            errors.append(
                f"jobs[{i}].worker has wrong type {type(job['worker']).__name__}"
            )
    spans = record.get("spans")
    if record.get("traced") and spans is not None:
        if not isinstance(spans, dict) or "name" not in spans or "seconds" not in spans:
            errors.append("spans is not a span tree (needs name + seconds)")
    return errors


class RunLedger:
    """Append/query interface over one cache's ``runs/runs.jsonl``."""

    FILENAME = "runs.jsonl"

    def __init__(self, root: str | os.PathLike):
        self.root = Path(root)

    @property
    def path(self) -> Path:
        return self.root / self.FILENAME

    # ------------------------------------------------------------------ write
    def append(self, record: Dict[str, Any]) -> str:
        """Persist one run record; fills ``schema``/``run_id`` if absent and
        returns the run id. One ``os.write`` per record keeps concurrent
        appenders line-atomic in practice."""
        record = dict(record)
        record.setdefault("schema", LEDGER_SCHEMA)
        if "run_id" not in record:
            record["run_id"] = new_run_id(
                record.get("spec_digest", "nospec"), record.get("started_at")
            )
        self.root.mkdir(parents=True, exist_ok=True)
        line = json.dumps(record, sort_keys=True, separators=(",", ":")) + "\n"
        fd = os.open(self.path, os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o644)
        try:
            os.write(fd, line.encode())
        finally:
            os.close(fd)
        return record["run_id"]

    # ------------------------------------------------------------------- read
    def records(self) -> Iterator[Dict[str, Any]]:
        """Every readable record, oldest first; corrupt lines are skipped."""
        try:
            f = open(self.path, encoding="utf-8")
        except (FileNotFoundError, OSError):
            return
        with f:
            for line in f:
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except json.JSONDecodeError:
                    continue
                if isinstance(record, dict):
                    yield record

    def runs(self, limit: Optional[int] = None) -> List[Dict[str, Any]]:
        """Most-recent-first run records (``limit`` caps the list)."""
        out = list(self.records())
        out.reverse()
        return out if limit is None else out[:limit]

    def history(self, limit: Optional[int] = None) -> Dict[str, Any]:
        """The machine-readable history envelope — the one shape both
        ``repro-sweep report --json`` and the serve daemon's ``/api/runs``
        endpoint return, so tooling parses them interchangeably."""
        runs = self.runs(limit=limit)
        return {
            "path": str(self.path),
            "schema": LEDGER_SCHEMA,
            "total": len(self),
            "returned": len(runs),
            "runs": runs,
        }

    # ------------------------------------------------------------ maintenance
    def compact(
        self, older_than: Optional[float] = None, now: Optional[float] = None
    ) -> int:
        """Rewrite the JSONL keeping only schema-valid records younger than
        ``older_than`` seconds; returns how many lines were dropped.

        ``older_than=None`` drops everything (matching
        :meth:`~repro.pipeline.cache.ResultCache.clean` semantics — the
        no-age ``repro-sweep clean`` is a full purge). Corrupt and
        schema-invalid lines are always dropped: compaction is the one
        moment the append-only file gets to heal. The rewrite is atomic
        (tempfile + ``os.replace``), so concurrent readers see either the
        old or the new file, never a torn one.
        """
        if now is None:
            now = time.time()
        try:
            with open(self.path, encoding="utf-8") as f:
                lines = [line for line in f.read().split("\n") if line.strip()]
        except (FileNotFoundError, OSError):
            return 0
        kept: List[str] = []
        removed = 0
        for line in lines:
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                removed += 1
                continue
            if validate_record(record):
                removed += 1
                continue
            if older_than is None:
                removed += 1
                continue
            age = now - float(record.get("started_at", 0.0))
            if age >= older_than:
                removed += 1
                continue
            kept.append(line)
        if not removed:
            return 0
        if not kept:
            try:
                os.unlink(self.path)
            except FileNotFoundError:
                pass
            return removed
        tmp = self.path.with_suffix(".jsonl.tmp")
        tmp.write_text("\n".join(kept) + "\n", encoding="utf-8")
        os.replace(tmp, self.path)
        return removed

    def get(self, run_id: str) -> Optional[Dict[str, Any]]:
        """One record by id — exact, unique prefix, or ``"last"``."""
        records = self.runs()
        if not records:
            return None
        if run_id in ("last", "latest", ""):
            return records[0]
        exact = [r for r in records if r.get("run_id") == run_id]
        if exact:
            return exact[0]
        prefixed = [r for r in records if str(r.get("run_id", "")).startswith(run_id)]
        return prefixed[0] if len(prefixed) == 1 else None

    def __len__(self) -> int:
        return sum(1 for _ in self.records())


# ----------------------------------------------------------------- rendering


def _fmt_ms(seconds: float) -> str:
    return f"{seconds * 1e3:10.2f}"


def render_span_tree(tree: Optional[Dict[str, Any]], max_depth: int = 12) -> List[str]:
    """A span tree as aligned text lines: total / self milliseconds + names.

    ``self`` is the node's own time (total minus children) — the column to
    scan for where the time actually went, since totals double-count their
    descendants.
    """
    if not tree:
        return ["(no spans recorded — run the sweep with --trace / REPRO_TRACE=1)"]
    lines = [f"{'total ms':>10}  {'self ms':>10}  span"]
    for node, depth in walk_spans(tree):
        if depth > max_depth:
            continue
        attrs = node.get("attrs") or {}
        shown = {k: v for k, v in attrs.items() if k not in ("hash",)}
        suffix = (
            " [" + ", ".join(f"{k}={v}" for k, v in sorted(shown.items())) + "]"
            if shown
            else ""
        )
        lines.append(
            f"{_fmt_ms(span_seconds(node))}  {_fmt_ms(span_self_seconds(node))}  "
            f"{'  ' * depth}{node.get('name', '?')}{suffix}"
        )
    return lines


def _age(epoch: float) -> str:
    delta = max(0.0, time.time() - epoch)
    if delta < 90:
        return f"{delta:.0f}s ago"
    if delta < 5400:
        return f"{delta / 60:.0f}m ago"
    if delta < 129600:
        return f"{delta / 3600:.1f}h ago"
    return f"{delta / 86400:.1f}d ago"


def render_run(record: Dict[str, Any], slowest: int = 8) -> List[str]:
    """One run record as the ``repro-sweep report`` detail block."""
    lines = [
        f"run {record.get('run_id', '?')}  ({_age(float(record.get('started_at', 0)))}, "
        f"executor={record.get('executor', '?')}, traced={record.get('traced', False)})",
        f"  jobs: {record.get('n_jobs', 0)} total · {record.get('cache_hits', 0)} cached · "
        f"{record.get('failures', 0)} failed · wall {record.get('wall_s', 0.0):.2f}s · "
        f"compute {record.get('compute_s', 0.0):.2f}s",
    ]
    reuse = []
    for key, label in (
        ("quant_stage_hits", "quant-stage"),
        ("hw_stage_hits", "hw-stage"),
    ):
        if record.get(key):
            reuse.append(f"{record[key]} {label}")
    if reuse:
        lines.append(f"  stage reuse: {', '.join(reuse)}")
    counters = record.get("counters") or {}
    for prefix, title in (
        ("hessian.store.", "hessian"),
        ("result_cache.", "result-cache"),
        ("engine.", "engine"),
        # Kernel-path attribution: how many quantize_matrix calls ran on the
        # vector fast path vs. the reference walk (REPRO_KERNEL / the
        # engine's kernel_path knob).
        ("quant.kernel.", "kernel"),
        # Fleet activity (remote executor) and blob-tier claim traffic.
        ("dist.", "dist"),
        ("cache.backend.", "cache-backend"),
    ):
        row = {
            k[len(prefix):]: v for k, v in sorted(counters.items()) if k.startswith(prefix)
        }
        if row:
            lines.append(
                f"  {title}: " + ", ".join(f"{k}={int(v)}" for k, v in row.items())
            )
    spans = record.get("spans")
    if isinstance(spans, dict):
        # Span-based kernel-path attribution: wall self-time actually spent
        # inside quantize_matrix, split by path (complements the call
        # counters above with where the time went).
        by_path: Dict[str, float] = {}
        calls: Dict[str, int] = {}
        for node, _depth in walk_spans(spans):
            if node.get("name") == "kernel:quantize_matrix":
                path = str((node.get("attrs") or {}).get("path", "?"))
                by_path[path] = by_path.get(path, 0.0) + span_self_seconds(node)
                calls[path] = calls.get(path, 0) + 1
        if by_path:
            lines.append(
                "  kernel self-time: "
                + ", ".join(
                    f"{path}={secs:.3f}s/{calls[path]} calls"
                    for path, secs in sorted(by_path.items())
                )
            )
    jobs = [j for j in record.get("jobs", []) if not j.get("from_cache")]
    by_worker: Dict[str, int] = {}
    for job in jobs:
        worker = str(job.get("worker", ""))
        if worker:
            by_worker[worker] = by_worker.get(worker, 0) + 1
    # Only worth a line when the work actually spread across identities
    # (multi-host fleet or a local pool's several processes).
    if len(by_worker) > 1 or any(":" in w for w in by_worker):
        host = record.get("hostname", "")
        prefix = f"  workers (submitted from {host}): " if host else "  workers: "
        lines.append(
            prefix
            + ", ".join(
                f"{w}={n}" for w, n in sorted(by_worker.items(), key=lambda kv: -kv[1])
            )
        )
    jobs.sort(key=lambda j: -float(j.get("seconds", 0.0)))
    if jobs:
        lines.append(f"  slowest computed jobs (of {len(jobs)}):")
        for job in jobs[:slowest]:
            mark = "" if job.get("ok", True) else "  FAILED"
            lines.append(
                f"    {float(job.get('seconds', 0.0)):8.3f}s  "
                f"{job.get('kind', '?'):9s} {job.get('label', '?')}{mark}"
            )
    failures = [j for j in record.get("jobs", []) if not j.get("ok", True)]
    for job in failures:
        lines.append(
            f"  FAILED {job.get('label', '?')}: {job.get('error_type', 'Error')}"
        )
    return lines
