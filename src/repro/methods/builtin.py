"""The eleven built-in quantization methods as declarative `MethodSpec`s.

Each spec wraps the corresponding ``repro.baselines`` kernel in a
:class:`BaselineAdapter` implementing the class-based lifecycle
(``prepare`` → ``quantize_layer``) and declares the capabilities the engine,
pipeline, and CLI previously hard-coded: who needs a Hessian, who accepts
``act_bits``, which keyword the group-size axis binds to, and the full
validated parameter schema. Outputs are bit-identical to the positional
``quantize_<name>`` functions — the adapters route the same arguments to the
same kernels, with the single upgrade that Hessian-aware methods receive a
lazy :class:`~repro.methods.resources.HessianBundle` (shared factors)
instead of rebuilding ``H``/``H⁻¹``/``U`` per call.
"""

from __future__ import annotations

from dataclasses import dataclass, fields as dataclass_fields
from typing import Callable, Optional

from .resources import HessianBundle
from .spec import LayerContext, LayerResources, MethodParamError, MethodSpec, Param

__all__ = ["BaselineAdapter", "builtin_method_specs"]


@dataclass
class BaselineAdapter:
    """Adapter: classic ``quantize_<name>(weights, calib, **kw)`` kernel →
    the ``prepare``/``quantize_layer`` lifecycle.

    Stateless (safe to share across threads). Capability flags live ONLY on
    the owning :class:`MethodSpec` (``ctx.spec``): ``prepare`` asks the spec
    whether this setting wants a Hessian and what damping it would use, then
    resolves the bundle from the context's store so factor work coalesces
    across layers, settings, and worker processes.
    """

    fn: Callable
    hessian_kw: bool = False  # the kernel accepts a ``hessian=`` keyword

    def prepare(self, ctx: LayerContext) -> LayerResources:
        bundle: Optional[HessianBundle] = None
        spec = ctx.spec
        if (
            spec is not None
            and ctx.calib_inputs is not None
            and spec.wants_hessian(ctx.act_bits)
        ):
            damp = spec.damp_ratio(ctx.params)
            if ctx.hessian_store is not None:
                bundle = ctx.hessian_store.bundle(ctx.calib_inputs, damp)
            else:
                bundle = HessianBundle(ctx.calib_inputs, damp)
        return LayerResources(calib_inputs=ctx.calib_inputs, hessian=bundle)

    def quantize_layer(self, weights, resources: Optional[LayerResources], **params):
        calib = resources.calib_inputs if resources is not None else None
        kwargs = dict(params)
        if self.hessian_kw and resources is not None and resources.hessian is not None:
            kwargs["hessian"] = resources.hessian
        return self.fn(weights, calib, **kwargs)


_CONFIG_FIELD_NAMES: Optional[frozenset] = None


def _config_fields() -> frozenset:
    global _CONFIG_FIELD_NAMES
    if _CONFIG_FIELD_NAMES is None:
        from ..quant.config import MicroScopiQConfig

        _CONFIG_FIELD_NAMES = frozenset(f.name for f in dataclass_fields(MicroScopiQConfig))
    return _CONFIG_FIELD_NAMES


@dataclass
class MicroScopiQAdapter(BaselineAdapter):
    """MicroScopiQ-family adapter: flat :class:`MicroScopiQConfig` field
    parameters (the pipeline's JSON-able form) fold into a ``config=``
    object, defaulting ``inlier_bits`` to the setting's weight bits —
    exactly the old harness ``_split_quant_kwargs`` behavior, now owned by
    the method itself."""

    def quantize_layer(self, weights, resources: Optional[LayerResources], **params):
        from ..quant.config import MicroScopiQConfig

        config_fields = _config_fields()
        cfg_kw = {k: v for k, v in params.items() if k in config_fields}
        rest = {k: v for k, v in params.items() if k not in config_fields}
        config = rest.pop("config", None)
        if cfg_kw:
            if config is not None:
                raise MethodParamError(
                    "pass either a config= object or flat MicroScopiQConfig "
                    f"fields, not both (got config= and {sorted(cfg_kw)})"
                )
            cfg_kw.setdefault("inlier_bits", rest.get("bits", 4))
            config = MicroScopiQConfig(**cfg_kw)
        return super().quantize_layer(weights, resources, config=config, **rest)


# ----------------------------------------------------------- schema helpers

def _group(default: int = 128) -> Param:
    return Param("group_size", default, (int,), "quantization group size (columns)")


def _sigma() -> Param:
    return Param("sigma_threshold", 3.0, (float, int), "the 3σ outlier rule multiplier")


def _microscopiq_params() -> tuple:
    """The MicroScopiQ schema: every :class:`MicroScopiQConfig` field as a
    flat parameter (the pipeline's form) plus the ``config=`` object for
    direct library calls."""
    from ..quant.config import MicroScopiQConfig

    return (
        Param("inlier_bits", None, (int,), "inlier bit budget bb (defaults to the setting's w_bits)", choices=(2, 4)),
        Param("outlier_bits", None, (int,), "outlier precision (default 2*bb)", choices=(4, 8)),
        Param("macro_block", 128, (int,), "MaB size B_M (inlier scale group)"),
        Param("micro_block", 8, (int,), "μB size B_μ (outlier scale group)"),
        Param("row_block", 128, (int,), "GPTQ row block rB"),
        _sigma(),
        Param("outlier_format", "mx-fp", (str,), "outlier number format", choices=("mx-fp", "mx-int", "none")),
        Param("prescale_outliers", True, (bool,), "pre-scale outliers by 2^Isf (§4.2)"),
        Param("prune_strategy", "hessian", (str,), "which inliers donate their slots", choices=("hessian", "magnitude", "adjacent")),
        Param("compensate", True, (bool,), "GPTQ/OBS error compensation"),
        Param("damp_ratio", 0.01, (float, int), "Hessian damping λ fraction"),
        Param("lwc", False, (bool,), "OmniQuant-style learnable weight clipping"),
        Param("config", None, (MicroScopiQConfig,), "a prebuilt MicroScopiQConfig (library calls only)"),
    )


def builtin_method_specs() -> tuple:
    """Construct the specs for all eleven built-in methods."""
    from ..baselines.atom import quantize_atom
    from ..baselines.awq import quantize_awq
    from ..baselines.gobo import quantize_gobo
    from ..baselines.gptq import quantize_gptq
    from ..baselines.microscopiq_adapter import (
        quantize_microscopiq_baseline,
        quantize_omni_microscopiq,
    )
    from ..baselines.olive import quantize_olive
    from ..baselines.omniquant import quantize_omniquant
    from ..baselines.rtn import quantize_rtn
    from ..baselines.sdq import quantize_sdq
    from ..baselines.smoothquant import quantize_smoothquant

    def adapter(fn, **kw) -> Callable:
        return lambda: BaselineAdapter(fn, **kw)

    ms_common = dict(
        params=_microscopiq_params(),
        needs_hessian=True,
        hessian_with_act=False,  # α migration rescales the calibration inputs
        act_aware=True,
        exports_packed=True,  # meta["packed"] PackedLayers feed codesign jobs
        group_param="macro_block",
    )
    return (
        MethodSpec(
            name="rtn",
            summary="round-to-nearest group quantization (no calibration)",
            make=adapter(quantize_rtn),
            params=(
                _group(),
                Param("per_tensor", False, (bool,), "one static scale for the whole tensor (QMamba-class)"),
            ),
            supports_per_tensor=True,
            # Per-(row, group) scales; the engine additionally refuses to
            # batch per_tensor=True calls (whole-tensor amax couples rows).
            row_batchable=True,
        ),
        MethodSpec(
            name="gptq",
            summary="RTN + sequential OBS error compensation [Frantar 2022]",
            make=adapter(quantize_gptq, hessian_kw=True),
            params=(
                _group(),
                Param("damp_ratio", 0.01, (float, int), "Hessian damping λ fraction"),
            ),
            needs_hessian=True,
            row_batchable=True,  # per-row scales, per-row OBS updates
        ),
        MethodSpec(
            name="awq",
            summary="activation-aware channel scaling + RTN [Lin 2024]",
            make=adapter(quantize_awq),
            params=(_group(),),
        ),
        MethodSpec(
            name="smoothquant",
            summary="α=0.5 difficulty migration + RTN [Xiao 2023]",
            make=adapter(quantize_smoothquant),
            params=(
                _group(),
                Param("alpha", 0.5, (float, int), "migration strength α"),
            ),
            act_aware=True,
        ),
        MethodSpec(
            name="omniquant",
            summary="grid-searched learnable clipping + equivalent transform [Shao 2023]",
            make=adapter(quantize_omniquant),
            params=(_group(),),
            act_aware=True,
            # Weight-only LWC picks clip ratios per (row, group); the α-grid
            # LET mode is excluded by the engine's weight-only batching gate.
            row_batchable=True,
        ),
        MethodSpec(
            name="atom",
            summary="mixed-precision channel reordering + GPTQ [Zhao 2024]",
            make=adapter(quantize_atom, hessian_kw=True),
            params=(
                _group(),
                Param("n_outlier_channels", 16, (int,), "channels kept at 8 bits"),
                Param("damp_ratio", 0.01, (float, int), "Hessian damping λ fraction"),
            ),
            needs_hessian=True,
            act_aware=True,
            # Channel order/bit map come from the (shared) calibration only;
            # the underlying gptq_core is per-row.
            row_batchable=True,
        ),
        MethodSpec(
            name="sdq",
            summary="rigid N:M sparse-decomposed quantization [Jeong 2024]",
            make=adapter(quantize_sdq),
            params=(
                _group(),
                Param("sparse_n", 2, (int,), "reserved slots per sparse block"),
                Param("sparse_m", 8, (int,), "sparse block size"),
            ),
            row_batchable=True,  # N:M masks, scales, and LWC are all per-row
        ),
        MethodSpec(
            name="olive",
            summary="outlier-victim pair quantization [Guo 2023]",
            make=adapter(quantize_olive),
            params=(_group(), _sigma()),
        ),
        MethodSpec(
            name="gobo",
            summary="centroid inliers + exact sparse outliers [Zadeh 2020]",
            make=adapter(quantize_gobo),
            params=(
                _sigma(),
                Param("sample_limit", 65536, (int,), "k-means sample cap"),
                Param("kmeans_iters", 0, (int,), "Lloyd refinement iterations"),
            ),
            group_param=None,  # bucketing is global; no group knob
        ),
        MethodSpec(
            name="microscopiq",
            summary="outlier-aware microscaling + redistribution pruning (the paper)",
            make=lambda: MicroScopiQAdapter(
                quantize_microscopiq_baseline, hessian_kw=True
            ),
            # Per-row inlier scales / μB walks / OBS rows. Deliberately NOT in
            # ms_common: omni-microscopiq's config competition scores whole
            # matrices and must stay unbatched.
            row_batchable=True,
            **ms_common,
        ),
        MethodSpec(
            name="omni-microscopiq",
            summary="MicroScopiQ + OmniQuant LWC/LET enhancement (Table 8)",
            make=lambda: MicroScopiQAdapter(
                quantize_omni_microscopiq, hessian_kw=True
            ),
            **ms_common,
        ),
    )
