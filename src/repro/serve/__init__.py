"""``repro.serve`` — the long-running sweep service.

A dependency-free threaded HTTP daemon over the shared
:class:`~repro.pipeline.scheduler.SweepScheduler`: clients submit
:class:`~repro.pipeline.spec.SweepSpec` grids as JSON, poll or SSE-stream
per-job progress, and fetch merged results (metrics, pivots, Pareto
frontiers) — all backed by the same content-addressed cache, stage graph,
and run ledger the one-shot CLI uses, so service results are bit-identical
to ``repro-sweep sweep`` and concurrent clients dedup overlapping work
in flight.

Start it with ``repro-serve`` (or ``python -m repro.serve``); talk to it
with :class:`~repro.serve.client.ServeClient` or the ``repro-sweep
submit / watch / results`` subcommands. Binds to 127.0.0.1 by default —
there is no authentication; see the README's security note before
exposing it wider.
"""

from ..pipeline.scheduler import SweepCancelled, SweepHandle, SweepScheduler
from .client import ServeClient, ServeError, sweep_to_payload
from .server import DEFAULT_PORT, SweepServer, build_sweep_spec, main, start_in_thread

__all__ = [
    "DEFAULT_PORT",
    "ServeClient",
    "ServeError",
    "SweepCancelled",
    "SweepHandle",
    "SweepScheduler",
    "SweepServer",
    "build_sweep_spec",
    "main",
    "start_in_thread",
    "sweep_to_payload",
]
