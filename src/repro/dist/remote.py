"""Submitter-side remote dispatch: tasks out to the coordinator, outcomes back.

This is the body of :class:`~repro.pipeline.executor.RemoteExecutor`: encode
every task, submit the batch (the coordinator dedups against its fleet-wide
in-flight book and answers cached jobs immediately), then poll ``collect``
and yield :class:`JobOutcome`\\ s in completion order — exactly the iterator
contract the scheduler already consumes from the local pools.

The timeout is *progress-based*, not absolute: the clock resets every time
a new outcome lands, so a long sweep is fine as long as the fleet keeps
finishing tasks, while a dead fleet (no workers pulling, or all of them
gone) surfaces as a :class:`TimeoutError` instead of a silent hang.
"""

from __future__ import annotations

import os
import time
from typing import Any, Callable, Dict, Iterator, Sequence

from ..obs.metrics import METRICS
from ..pipeline.executor import JobOutcome
from ..pipeline.runner import _hw_stage_kernel, execute_job
from .client import CoordinatorClient
from .wire import Task, decode_outcome, encode_task, task_key

__all__ = ["DIST_URL_ENV", "run_remote"]

DIST_URL_ENV = "REPRO_DIST_URL"


def run_remote(
    fn: Callable[[Any], Dict[str, Any]],
    tasks: Sequence[Task],
    url: str = "",
    poll: float = 0.1,
    timeout: float = 600.0,
) -> Iterator[JobOutcome]:
    """Run ``tasks`` on the fleet behind ``url`` (or ``REPRO_DIST_URL``).

    ``fn`` must be one of the two canonical kernels — workers decide what to
    run from the task itself, so an arbitrary callable cannot cross the wire
    and asking for one is a programming error worth failing loudly on.
    """
    if fn not in (execute_job, _hw_stage_kernel):
        raise ValueError(
            f"remote execution only runs the canonical kernels "
            f"(execute_job / the codesign stage kernel), not {fn!r}"
        )
    tasks = list(tasks)
    if not tasks:
        return
    url = url or os.environ.get(DIST_URL_ENV, "")
    if not url:
        raise RuntimeError(
            f"no coordinator URL: pass --coordinator / set {DIST_URL_ENV} "
            f"(start one with `repro-dist coordinator`)"
        )
    client = CoordinatorClient(url)
    by_key: Dict[str, Task] = {}
    entries = []
    traced = _tracing_active()
    for task in tasks:
        key = task_key(task)
        by_key.setdefault(key, task)
        entries.append({"key": key, "task": encode_task(task), "traced": traced})
    client.submit_tasks(entries)
    METRICS.incr("dist.remote.tasks_dispatched", len(entries))

    pending = list(by_key)
    last_progress = time.monotonic()
    while pending:
        reply = client.collect(pending)
        done = reply.get("done", {})
        if done:
            last_progress = time.monotonic()
            for key, payload in done.items():
                yield decode_outcome(payload, by_key[key])
            pending = [k for k in pending if k not in done]
            continue
        if time.monotonic() - last_progress > timeout:
            raise TimeoutError(
                f"no outcome from {url} in {timeout:g}s with "
                f"{len(pending)} task(s) pending — are workers running?"
            )
        time.sleep(poll)


def _tracing_active() -> bool:
    from ..obs.trace import current_tracer

    return current_tracer() is not None
