"""Table 7b: sequential-vs-parallel calibration ablation across families.

The engine's ``calibration`` knob is the paper's calibration-mode ablation:
``"sequential"`` (the reference semantics) collects each group's
activations on the progressively quantized model, GPTQ-style, so later
layers compensate the error the earlier ones already injected;
``"parallel"`` calibrates everything once on the full-precision model —
maximal Hessian reuse, no cross-group ordering, but no progressive
compensation either.

This benchmark pins the ablation gap at the aggressive W2 operating point,
as ONE pipeline sweep over the ``calibrations`` axis crossed with the
lm / cnn / ssm substrates (the ``--calibrations sequential parallel`` CLI
axis). The shape that carries over from the paper's ablation:

* **deep LM stacks pay for parallel calibration** — quantization error
  compounds through the depth with nothing downstream correcting for it
  (LLaMA-2-7B analog: ~9% PPL regression; LLaMA-3-8B analog: ~2%);
* **shallow substrates are calibration-mode insensitive** — the 4-stage
  CNN and the 4-projection SSM have too little depth for progressive
  compensation to matter (gaps within noise, either direction).

Reference numbers (seed 0, default corpora) are pinned so a drift in the
engine's calibration scheduling shows up here first.
"""

import pytest

from repro.pipeline import SweepSpec, run_sweep
from benchmarks.conftest import print_table

W_BITS = 2
LM_FAMILIES = ("llama2-7b", "llama3-8b")
FAMILIES = LM_FAMILIES + ("resnet50", "vmamba-s")

# Pinned reference cells: (substrate, family, calibration) -> task metric.
REFERENCE = {
    ("lm", "llama2-7b", "sequential"): 18.0860,
    ("lm", "llama2-7b", "parallel"): 19.7263,
    ("lm", "llama3-8b", "sequential"): 15.2512,
    ("lm", "llama3-8b", "parallel"): 15.5043,
    ("cnn", "resnet50", "sequential"): 89.0625,
    ("cnn", "resnet50", "parallel"): 92.7083,
    ("ssm", "vmamba-s", "sequential"): 1.7307,
    ("ssm", "vmamba-s", "parallel"): 1.7271,
}
METRIC = {"lm": "ppl", "cnn": "top1", "ssm": "nll"}


def compute(cache_dir):
    sweep = SweepSpec(
        families=FAMILIES,
        methods=("microscopiq",),
        substrates=("lm", "cnn", "ssm"),
        w_bits=(W_BITS,),
        calibrations=("sequential", "parallel"),
    )
    result = run_sweep(sweep, cache_dir=cache_dir, executor="auto")
    for outcome in result.outcomes:
        if not outcome.ok:
            raise RuntimeError(
                f"calibration job {outcome.job.label!r} failed: "
                f"{outcome.error['type']}: {outcome.error['message']}"
            )
    out = {}
    for o in result.outcomes:
        s = o.job.spec
        out[(s.substrate, s.family, s.calibration)] = o.metrics[METRIC[s.substrate]]
    return out


@pytest.mark.benchmark(group="table7b")
def test_table7b_calibration_gap(benchmark, ppl_cache):
    cells = benchmark.pedantic(
        compute, args=(ppl_cache.cache_dir,), rounds=1, iterations=1
    )
    rows = []
    for sub, fam, _ in sorted({k[:2] + ("",) for k in cells}):
        seq = cells[(sub, fam, "sequential")]
        par = cells[(sub, fam, "parallel")]
        rows.append(
            [
                f"{sub}:{fam}",
                METRIC[sub],
                f"{seq:.4f}",
                f"{par:.4f}",
                f"{100.0 * (par - seq) / seq:+.2f}%",
            ]
        )
    print_table(
        f"Table 7b — calibration-mode ablation at W{W_BITS} (microscopiq)",
        ["model", "metric", "sequential", "parallel", "gap"],
        rows,
    )

    # Deep LM stacks: parallel calibration must cost perplexity, and the
    # deeper-degradation ordering must hold (llama2-7b's analog regresses
    # hardest — its outlier demographics lean on progressive compensation).
    for fam in LM_FAMILIES:
        seq, par = cells[("lm", fam, "sequential")], cells[("lm", fam, "parallel")]
        assert par > seq, f"{fam}: parallel calibration should cost PPL at W2"
        assert (par - seq) / seq < 0.25, f"{fam}: gap should stay bounded"
    gap72 = cells[("lm", "llama2-7b", "parallel")] / cells[("lm", "llama2-7b", "sequential")]
    gap38 = cells[("lm", "llama3-8b", "parallel")] / cells[("lm", "llama3-8b", "sequential")]
    assert gap72 > 1.05, "llama2-7b analog: the ablation gap is the visible one"
    assert gap38 > 1.005
    assert gap72 > gap38

    # Shallow substrates: calibration-mode insensitive (either direction,
    # small) — 4 conv stages / 4 projections give progressive compensation
    # nothing to compensate across.
    cnn_seq = cells[("cnn", "resnet50", "sequential")]
    cnn_par = cells[("cnn", "resnet50", "parallel")]
    assert abs(cnn_par - cnn_seq) <= 5.0  # top-1 points
    assert cnn_par >= cnn_seq - 2.0
    ssm_seq = cells[("ssm", "vmamba-s", "sequential")]
    ssm_par = cells[("ssm", "vmamba-s", "parallel")]
    assert abs(ssm_par - ssm_seq) / ssm_seq < 0.01

    # The pinned reference numbers themselves (drift detector).
    for key, expected in REFERENCE.items():
        assert cells[key] == pytest.approx(expected, rel=5e-3), key
