"""Table 7: progressive ablation on the LLaMA-3-8B analog.

Paper trajectory (PPL): FP 6.13 → INT-4 10.27 → MX-INT-4 9.53 →
MX-INT-2 **39.48 (spike)** → +MX-FP outliers (per-tensor group) 10.96 →
+per-μB groups 8.93 → +prescale 8.89 → +pruning 9.02 (small ↑) →
+compensation 8.97 (recovers) → +act quant 9.08 → +KV cache 9.58.

The shape to reproduce: the 2-bit spike, the large recovery from per-μB
MX-FP outliers, and the small perturbations from the remaining steps.

Each ablation step is one :class:`~repro.pipeline.ExperimentSpec` whose
``quant_kwargs`` are the MicroScopiQConfig fields that step toggles; the
whole trajectory is a single ``run_sweep`` call (the steps are independent,
so the sweep parallelizes on multi-core machines).
"""

import pytest

from repro.models import MODEL_FAMILIES
from repro.pipeline import ExperimentSpec
from benchmarks.conftest import print_table

FAMILY = "llama3-8b"


def ablation_steps():
    """The paper's cumulative ablation as (label, spec) pipeline steps."""
    p = MODEL_FAMILIES[FAMILY]
    # "INT-4 scalar": one group spanning the whole row.
    d_in = max(p.d_model, p.d_ff)
    row_group = 1 << (d_in - 1).bit_length()

    def step(label, w_bits, cfg, act_bits=None, kv_bits=None):
        return (
            label,
            ExperimentSpec(
                family=FAMILY,
                method="microscopiq",
                w_bits=w_bits,
                act_bits=act_bits,
                quant_kwargs=tuple(sorted(cfg.items())),
                kv_bits=kv_bits,
                # KIVI residual window scaled to the toy sequence length.
                kv_residual=16,
                label=label,
            ),
        )

    int4 = dict(inlier_bits=4, outlier_format="none", compensate=False)
    coarse = dict(
        inlier_bits=2, micro_block=128, macro_block=128,
        compensate=False, prescale_outliers=False,
    )
    fine = dict(coarse, micro_block=8)
    pre = dict(fine, prescale_outliers=True)
    comp = dict(pre, compensate=True)
    return [
        ("baseline W16A16", ExperimentSpec(family=FAMILY, label="baseline W16A16")),
        step("+ all weights INT-4 (per-row scale)", 4, dict(int4, macro_block=row_group)),
        step("+ MX-INT-4 (group 128)", 4, dict(int4, macro_block=128)),
        step("+ MX-INT-2 (group 128)", 2, dict(int4, macro_block=128, inlier_bits=2)),
        step("+ outliers MX-FP-4 (group 128)", 2, coarse),
        step("+ outliers MX-FP-4 (μB=8)", 2, fine),
        step("+ reduce outlier magnitude 2^Isf", 2, pre),
        step("+ Hessian error compensation", 2, comp),
        step("+ activations MX-INT-8, α=0.7", 2, comp, act_bits=8),
        step("+ 2-bit KV-cache quantization", 2, comp, act_bits=8, kv_bits=2),
    ]


def compute(ppl_cache):
    steps = ablation_steps()
    # One batched sweep through the session cache: the FP baseline cell is
    # shared with Table 2, and re-runs inside a session are pure cache hits.
    ppl_cache.prefetch([spec for _, spec in steps])
    return [(label, ppl_cache.metrics(spec)["ppl"]) for label, spec in steps]


@pytest.mark.benchmark(group="table7")
def test_table7_ablation(benchmark, ppl_cache):
    steps = benchmark.pedantic(compute, args=(ppl_cache,), rounds=1, iterations=1)
    ppl = dict(steps)
    rows = [[label, f"{p:.2f}"] for label, p in steps]
    print_table("Table 7 — progressive ablation (LLaMA-3-8B analog)", ["step", "PPL"], rows)

    fp = steps[0][1]
    spike = ppl["+ MX-INT-2 (group 128)"]
    recovered = ppl["+ outliers MX-FP-4 (μB=8)"]
    # The 2-bit spike and the μB-grouped MX-FP recovery (the table's core).
    assert spike > 3.0 * fp
    assert recovered < 0.55 * spike
    # Per-μB grouping beats per-128 outlier grouping.
    assert recovered <= ppl["+ outliers MX-FP-4 (group 128)"] * 1.02
    # MX-INT-4 grouping no worse than per-row INT-4.
    assert ppl["+ MX-INT-4 (group 128)"] <= ppl["+ all weights INT-4 (per-row scale)"] * 1.05
    # Compensation helps; activation quantization adds little; 2-bit KV
    # adds a visible but bounded increase (the toy model lacks the head
    # redundancy of a real 8B model, so its KV step is larger than the
    # paper's +0.5 — the direction is what carries over).
    assert ppl["+ Hessian error compensation"] < ppl["+ reduce outlier magnitude 2^Isf"]
    assert ppl["+ activations MX-INT-8, α=0.7"] <= ppl["+ Hessian error compensation"] * 1.3
    kv = ppl["+ 2-bit KV-cache quantization"]
    assert ppl["+ activations MX-INT-8, α=0.7"] <= kv <= ppl["+ activations MX-INT-8, α=0.7"] * 4.0
