"""Table 4: CNN and SSM generality, as a batched pipeline sweep.

Runs on the ``cnn`` and ``ssm`` substrates of the experiment pipeline: one
content-hashed job per (model × setting × method) cell, evaluated as
relative top-1 agreement with the full-precision model on the substrate's
held-out synthetic set.

Paper shape: near-lossless W4A4 and W2A8 on CNNs, degrading monotonically
toward W2A4 but still beating plain RTN; SSMs degrade far more than CNNs
(the recurrence compounds weight error) but MicroScopiQ stays above the
QMamba-class baseline (static per-tensor RTN)."""

import pytest

from repro.pipeline import ExperimentSpec, SweepSpec, run_sweep
from benchmarks.conftest import print_table

# Published FP baselines used to map relative agreement -> absolute top-1.
FP_TOP1 = {"resnet50": 76.15, "vgg16": 71.59, "vmamba-s": 83.60, "vim-s": 80.50}

CNNS = ("resnet50", "vgg16")
SSMS = ("vmamba-s", "vim-s")


def _specs():
    specs = []
    for name in CNNS:
        for wb, ab in [(4, 4), (2, 8), (2, 4)]:
            specs.append(ExperimentSpec(
                family=name, substrate="cnn", method="microscopiq",
                w_bits=wb, act_bits=ab,
            ))
        specs.append(ExperimentSpec(
            family=name, substrate="cnn", method="rtn", w_bits=2, act_bits=4,
        ))
    for name in SSMS:
        for wb, ab in [(4, 4), (2, 8)]:
            specs.append(ExperimentSpec(
                family=name, substrate="ssm", method="microscopiq",
                w_bits=wb, act_bits=ab,
            ))
        # QMamba-class baseline: static per-tensor INT quantization.
        specs.append(ExperimentSpec(
            family=name, substrate="ssm", method="rtn", w_bits=4, act_bits=4,
            quant_kwargs={"per_tensor": True},
        ))
    return specs


def compute(cache_dir):
    result = run_sweep(SweepSpec.from_specs(_specs()), cache_dir=cache_dir,
                       executor="auto")
    assert result.ok, [o.error for o in result.failures()]
    out = {}
    for spec in _specs():
        setting = f"W{spec.w_bits}A{spec.act_bits}"
        metrics = result[spec]
        out[(spec.family, setting, spec.method)] = metrics["top1"]
        if spec.substrate == "ssm":
            out[(spec.family, setting, spec.method, "nll")] = metrics["nll"]
    return out


@pytest.mark.benchmark(group="table4")
def test_table4_cnn_ssm(benchmark, ppl_cache):
    res = benchmark.pedantic(
        compute, args=(ppl_cache.cache_dir,), rounds=1, iterations=1
    )
    rows = []
    for key, agree in sorted(res.items()):
        if len(key) != 3:
            continue
        model, setting, method = key
        mapped = agree / 100 * FP_TOP1[model]
        rows.append([model, setting, method, f"{agree:.1f}", f"{mapped:.1f}"])
    print_table(
        "Table 4 — Top-1 relative agreement (and mapped absolute)",
        ["model", "setting", "method", "agree%", "mapped top-1"],
        rows,
    )
    # CNNs: W4A4 near-lossless and best; the W2 settings degrade but both
    # still beat plain RTN at W2A4. (The A8-vs-A4 ordering *within* W2 is
    # not asserted: at this toy scale the α-migration interaction makes it
    # seed-dependent in both directions.)
    for cnn in CNNS:
        w2_best = max(res[(cnn, "W2A8", "microscopiq")], res[(cnn, "W2A4", "microscopiq")])
        assert res[(cnn, "W4A4", "microscopiq")] >= w2_best - 2.0
        assert res[(cnn, "W2A4", "microscopiq")] >= res[(cnn, "W2A4", "rtn")]
        assert res[(cnn, "W2A8", "microscopiq")] >= res[(cnn, "W2A4", "rtn")]
    assert res[("resnet50", "W4A4", "microscopiq")] > 88.0
    # SSMs harder than CNNs (the recurrence compounds weight error);
    # MicroScopiQ beats the QMamba-class static per-tensor baseline on both
    # the task metric and the sensitive sequence-NLL metric.
    for ssm in SSMS:
        assert res[(ssm, "W4A4", "microscopiq")] < res[("resnet50", "W4A4", "microscopiq")]
        assert res[(ssm, "W4A4", "microscopiq")] >= res[(ssm, "W4A4", "rtn")]
        assert res[(ssm, "W4A4", "microscopiq", "nll")] < res[(ssm, "W4A4", "rtn", "nll")]
        # Weight-bit monotonicity on the sensitive metric.
        assert res[(ssm, "W4A4", "microscopiq", "nll")] < res[(ssm, "W2A8", "microscopiq", "nll")]
