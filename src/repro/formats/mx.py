"""Microscaling (MX) block formats: MX-INT and MX-FP.

MX [OCP MX spec; Rouhani et al. 2023] represents a *group* of values with
shared scale factors:

* **MX-INT-b_k1** — one power-of-two scale ``2**Isf`` (an E8M0 exponent)
  shared by a group of ``k1`` elements, each stored as a ``b``-bit symmetric
  integer. Used for inliers (k1 = macro-block size, 128 by default).

* **MX-FP-b_{k1,k2}** — two-level scaling: a power-of-two level-1 scale per
  ``k1`` group plus a shared *microexponent* ``μX`` per ``k2`` sub-group.
  After sharing ``μX``, every element degenerates to a sign + mantissa pair
  ``(-1)^s * 1.m * 2^μX`` which integer PEs can process with shifts. Used for
  outliers (k1 = k2 = micro-block size, 8 by default).

The key accuracy lever studied in Fig. 14 of the paper emerges naturally
here: the wider the group sharing ``μX``, the more diverse the element
exponents, and the larger the clamping error of the shared exponent.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .fp import E1M2, E3M4, FPFormat
from .scalar import dequantize_int, int_max, pow2_scale_exponent, quantize_int

__all__ = [
    "MxIntResult",
    "MxFpResult",
    "quantize_mx_int",
    "quantize_mx_fp_group",
    "quantize_mx_fp",
    "outlier_format_for_bits",
]


def outlier_format_for_bits(bits: int) -> FPFormat:
    """The paper's outlier element format: e1m2 at 4 bits, e3m4 at 8 bits."""
    if bits == 4:
        return E1M2
    if bits == 8:
        return E3M4
    raise ValueError(f"unsupported outlier bit-width {bits}; expected 4 or 8")


@dataclass
class MxIntResult:
    """Output of an MX-INT group quantization."""

    codes: np.ndarray  # int32, shape of input
    scale_exp: np.ndarray  # Isf per group (int32)
    dequant: np.ndarray  # reconstructed float64 values
    bits: int
    group_size: int


@dataclass
class MxFpResult:
    """Output of a shared-microexponent MX-FP group quantization."""

    signs: np.ndarray  # ±1 per element
    mantissa_codes: np.ndarray  # int in [0, man_levels) per element
    level1_exp: int  # power-of-two level-1 scale exponent
    mu_x: int  # shared microexponent μX
    dequant: np.ndarray  # reconstructed values
    fmt: FPFormat

    @property
    def scale_exp(self) -> int:
        """Combined exponent ``level1_exp + μX`` applied to the significand."""
        return self.level1_exp + self.mu_x


def quantize_mx_int(x: np.ndarray, bits: int, group_size: int) -> MxIntResult:
    """MX-INT-b_k1 quantization along the last axis.

    The trailing axis is partitioned into contiguous groups of
    ``group_size``; each group shares one power-of-two scale. The last group
    may be ragged if the axis length is not a multiple of ``group_size``.
    """
    x = np.asarray(x, dtype=np.float64)
    n = x.shape[-1]
    codes = np.empty(x.shape, dtype=np.int32)
    dequant = np.empty_like(x)
    n_groups = (n + group_size - 1) // group_size
    exps = np.empty(x.shape[:-1] + (n_groups,), dtype=np.int32)
    for g in range(n_groups):
        sl = slice(g * group_size, min((g + 1) * group_size, n))
        block = x[..., sl]
        e = pow2_scale_exponent(block, bits, axis=-1)
        scale = 2.0 ** e.astype(np.float64)
        c = quantize_int(block, scale, bits)
        codes[..., sl] = c
        dequant[..., sl] = dequantize_int(c, scale)
        exps[..., g] = np.squeeze(e, axis=-1)
    return MxIntResult(codes, exps, dequant, bits, group_size)


def quantize_mx_fp_group(values: np.ndarray, fmt: FPFormat) -> MxFpResult:
    """Quantize one group of nonzero values to MX-FP with a shared ``μX``.

    Steps (paper §4.2, Fig. 3 Step 2):

    1. level-1 power-of-two scale ``2**l1`` so the largest magnitude fits
       within the element format's dynamic range;
    2. per-element FP quantization is then constrained to a *single* shared
       exponent ``μX``, selected from the format's exponent range to minimize
       the group's squared reconstruction error;
    3. every element becomes ``sign * 1.m * 2**(μX + l1)``. Elements smaller
       than ``2**μX`` clamp to the hidden-bit floor — the source of the
       group-size error studied in Fig. 14.
    """
    values = np.asarray(values, dtype=np.float64).ravel()
    if values.size == 0:
        raise ValueError("cannot quantize an empty outlier group")
    mag = np.abs(values)
    vmax = float(mag.max())
    if vmax == 0.0:
        zero = np.zeros_like(values)
        return MxFpResult(np.ones_like(values), zero.astype(np.int32), 0, 0, zero, fmt)

    # Level-1 scale: smallest power of two with max(|v|)/2**l1 <= fmt.max_value.
    l1 = int(np.ceil(np.log2(vmax / fmt.max_value)))
    scaled = mag / 2.0**l1

    man_levels = fmt.man_levels
    top_exp = int(np.floor(np.log2(scaled.max())))
    lo = max(0, top_exp - fmt.exp_levels + 1)
    hi = min(fmt.exp_levels - 1, top_exp)
    # All candidate μX values at once ([C, 1] against [elements]) instead of
    # one numpy pass per candidate — this runs once per outlier group, which
    # is the hottest call site of a MicroScopiQ sweep.
    cand = np.arange(lo, hi + 1, dtype=np.float64)[:, None]
    pw = 2.0**cand
    codes = np.clip(np.rint((scaled[None, :] / pw - 1.0) * man_levels), 0, man_levels - 1)
    recon = (1.0 + codes / man_levels) * pw
    # A dedicated zero encoding: elements closer to 0 than to the
    # hidden-bit floor reconstruct as 0 (code -1).
    use_zero = scaled[None, :] < recon - scaled[None, :]
    recon = np.where(use_zero, 0.0, recon)
    codes = np.where(use_zero, -1, codes)
    err = np.sum((recon - scaled[None, :]) ** 2, axis=1)
    i = int(np.argmin(err))  # first minimum — same tie-break as the old loop
    mu_x = lo + i
    codes = codes[i].astype(np.int32)
    recon = recon[i]

    signs = np.where(values < 0, -1.0, 1.0)
    dequant = signs * recon * 2.0**l1
    return MxFpResult(signs, codes, l1, int(mu_x), dequant, fmt)


def quantize_mx_fp(x: np.ndarray, bits: int, group_size: int) -> np.ndarray:
    """Dense MX-FP round-trip along the last axis (groups share one μX).

    Used by the Table 7 ablation to evaluate MX-FP at various group sizes.
    Zero groups pass through unchanged.
    """
    fmt = outlier_format_for_bits(bits)
    x = np.asarray(x, dtype=np.float64)
    flat = x.reshape(-1, x.shape[-1])
    out = np.empty_like(flat)
    n = flat.shape[-1]
    for r in range(flat.shape[0]):
        for g in range(0, n, group_size):
            block = flat[r, g : g + group_size]
            if np.all(block == 0.0):
                out[r, g : g + group_size] = 0.0
            else:
                out[r, g : g + group_size] = quantize_mx_fp_group(block, fmt).dequant
    return out.reshape(x.shape)
