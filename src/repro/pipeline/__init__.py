"""Experiment orchestration: declarative sweeps, caching, parallel execution.

The pipeline turns the repo's per-table benchmark scripts into one reusable
substrate:

* :mod:`~repro.pipeline.spec` — :class:`ExperimentSpec` / :class:`SweepSpec`
  grids enumerated into content-hashed :class:`Job`\\ s;
* :mod:`~repro.pipeline.cache` — a content-addressed on-disk result store, so
  overlapping sweeps only compute what's new;
* :mod:`~repro.pipeline.executor` — serial / thread / process execution with
  per-job timing and failure capture;
* :mod:`~repro.pipeline.runner` — :func:`run_sweep` wiring the above into a
  :class:`SweepResult` with pivot/aggregation helpers;
* :mod:`~repro.pipeline.scheduler` — the reusable :class:`SweepScheduler`
  behind both :func:`run_sweep` and the ``repro-serve`` service: submission
  queue, per-submission :class:`SweepHandle`\\ s, cross-submission in-flight
  dedup;
* :mod:`~repro.pipeline.progress` — throughput / cache-hit telemetry with
  event-sink fan-out (ticker, SSE subscribers);
* :mod:`~repro.pipeline.cli` — the ``repro-sweep`` / ``python -m
  repro.pipeline`` command line (including the service-backed
  ``submit`` / ``watch`` / ``results`` modes).

Quickstart::

    from repro.pipeline import SweepSpec, run_sweep

    spec = SweepSpec(
        families=("opt-6.7b", "llama3-8b"),
        methods=("fp16", "rtn", "microscopiq"),
        w_bits=(4, 2),
    )
    result = run_sweep(spec, cache_dir=".repro-cache", executor="auto")
    print(result.pivot("family", "method", metric="ppl"))
"""

from .cache import ResultCache
from .executor import (
    EXECUTORS,
    JobOutcome,
    ProcessExecutor,
    SerialExecutor,
    ThreadExecutor,
    default_workers,
    make_executor,
)
from .progress import ProgressTracker
from .runner import (
    SweepResult,
    execute_job,
    hw_stage_hash,
    resolve_metric,
    run_codesign_job,
    run_sweep,
)
from .scheduler import SweepCancelled, SweepHandle, SweepScheduler, sweep_digest
from .spec import (
    CALIBRATION_MODES,
    FP_METHOD,
    HASH_VERSION,
    JOB_KINDS,
    ExperimentSpec,
    Job,
    SweepSpec,
    known_methods,
)

__all__ = [
    "CALIBRATION_MODES",
    "EXECUTORS",
    "ExperimentSpec",
    "FP_METHOD",
    "HASH_VERSION",
    "JOB_KINDS",
    "Job",
    "JobOutcome",
    "ProcessExecutor",
    "ProgressTracker",
    "ResultCache",
    "SerialExecutor",
    "SweepCancelled",
    "SweepHandle",
    "SweepResult",
    "SweepScheduler",
    "SweepSpec",
    "ThreadExecutor",
    "default_workers",
    "execute_job",
    "hw_stage_hash",
    "known_methods",
    "make_executor",
    "resolve_metric",
    "run_codesign_job",
    "run_sweep",
    "sweep_digest",
]
