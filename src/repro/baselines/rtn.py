"""Round-to-nearest (RTN) group quantization — the no-frills baseline."""

from __future__ import annotations

import numpy as np

from .base import BaselineResult, rtn_group_quantize

__all__ = ["quantize_rtn"]


def quantize_rtn(
    weights: np.ndarray,
    calib_inputs: np.ndarray | None = None,
    bits: int = 4,
    group_size: int = 128,
    per_tensor: bool = False,
) -> BaselineResult:
    """Symmetric per-group RTN with a float scale. Ignores calibration data.

    ``per_tensor=True`` collapses to one static scale for the whole matrix —
    the QMamba-class baseline of Table 4, where a single large outlier sets
    the step size for every weight.
    """
    if per_tensor:
        w = np.asarray(weights, dtype=np.float64)
        maxq = 2 ** (bits - 1) - 1
        amax = float(np.max(np.abs(w)))
        scale = amax / maxq if amax > 0.0 else 1.0
        dq = np.clip(np.rint(w / scale), -maxq, maxq) * scale
        return BaselineResult("rtn", dq, float(bits), {"per_tensor": 1})
    dq = rtn_group_quantize(weights, bits, group_size)
    return BaselineResult("rtn", dq, float(bits), {"group_size": group_size})
