"""Shared fixtures: representative weight matrices and calibration data.

Session-scoped so the expensive objects (correlated calibration sets,
quantized layers) are built once per test run.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.quant import MicroScopiQConfig, quantize_matrix


def make_outlier_matrix(
    d_out: int = 48,
    d_in: int = 256,
    outlier_rate: float = 0.012,
    adjacent_rows: int = 8,
    seed: int = 0,
) -> np.ndarray:
    """Gaussian weights + planted outliers incl. adjacent pairs."""
    rng = np.random.default_rng(seed)
    w = rng.normal(0.0, 0.02, (d_out, d_in))
    mask = rng.random(w.shape) < outlier_rate
    w[mask] *= rng.uniform(4.0, 8.0, int(mask.sum()))
    for r in range(0, min(adjacent_rows * 4, d_out), 4):
        c = int(rng.integers(0, d_in - 1))
        w[r, c], w[r, c + 1] = 0.15, -0.14
    return w


@pytest.fixture(scope="session")
def weights() -> np.ndarray:
    return make_outlier_matrix()


@pytest.fixture(scope="session")
def calib() -> np.ndarray:
    """Correlated calibration inputs (Hessian far from identity)."""
    rng = np.random.default_rng(1)
    a = rng.normal(0.0, 1.0, (256, 256))
    cov = a @ a.T / 256
    return rng.multivariate_normal(np.zeros(256), cov, size=128)


@pytest.fixture(scope="session")
def packed_w2(weights, calib):
    return quantize_matrix(weights, calib, MicroScopiQConfig(inlier_bits=2))


@pytest.fixture(scope="session")
def packed_w4(weights, calib):
    return quantize_matrix(weights, calib, MicroScopiQConfig(inlier_bits=4))
