"""Accelerator configuration (paper §5, Figure 4/5).

Defaults model the 64×64 weight-stationary array the paper evaluates:
1 GHz clock, HBM2 off-chip at 256 GB/s, a 2 MB L2 SRAM feeding the on-chip
buffers over a 64 GB/s OCP-SRAM interface, and one shared ReCoN unit
(design A of Fig. 15).
"""

from __future__ import annotations

from dataclasses import dataclass, replace

__all__ = ["AcceleratorConfig"]


@dataclass(frozen=True)
class AcceleratorConfig:
    """Microarchitecture parameters of a MicroScopiQ accelerator instance."""

    rows: int = 64
    cols: int = 64
    n_recon: int = 1
    freq_ghz: float = 1.0
    dram_gbps: float = 256.0  # HBM2
    sram_gbps: float = 64.0  # OCP-SRAM interface L2 -> buffers
    l2_kb: int = 2048
    act_bits: int = 8
    weight_buffer_kb: int = 256
    act_buffer_kb: int = 128

    def __post_init__(self) -> None:
        if self.rows < 1 or self.cols < 1:
            raise ValueError("array dimensions must be positive")
        if self.cols & (self.cols - 1):
            raise ValueError(f"cols must be a power of two for ReCoN, got {self.cols}")
        if self.n_recon < 1:
            raise ValueError("need at least one ReCoN unit")

    @property
    def dram_bits_per_cycle(self) -> float:
        """Off-chip bandwidth in bits per clock cycle."""
        return self.dram_gbps * 8.0 / self.freq_ghz

    @property
    def sram_bits_per_cycle(self) -> float:
        """L2-to-buffer bandwidth in bits per clock cycle."""
        return self.sram_gbps * 8.0 / self.freq_ghz

    @property
    def recon_stages(self) -> int:
        """Pipeline depth of one ReCoN unit: log2(cols) + 1 stages."""
        return self.cols.bit_length()  # log2(cols) + 1 for power-of-two cols

    def with_(self, **kwargs) -> AcceleratorConfig:
        return replace(self, **kwargs)
