"""Content-addressed result store over pluggable storage backends.

Each completed job is one JSON record keyed by the job's content hash
(:attr:`repro.pipeline.spec.Job.job_hash` — spec + ``repro.__version__`` +
sweep seed). Because the address *is* the content identity, re-runs and
partially-overlapping sweeps only compute the jobs whose hash is absent;
bumping ``repro.__version__`` or the sweep seed naturally invalidates
everything.

*Where* the records live is a :class:`CacheBackend`:

* :class:`DirectoryBackend` (the default) keeps the original layout — one
  file at ``<root>/<hh>/<hash>.json`` with ``hh`` the first two hex digits
  (a fan-out shard so huge sweeps don't create million-entry directories),
  written atomically (tempfile + ``os.replace``) so a crashed or killed
  worker can never leave a half-written record that later poisons a sweep.
* :class:`SQLiteBackend` keeps them in one WAL-mode ``cache.db`` — safe
  under concurrent writers (the distributed coordinator's many handler
  threads), with ``entries()``/``clean()`` served by indexed queries
  instead of directory scans, and a ``VACUUM`` after large deletes so a
  purged cache actually returns its disk.

The sibling :class:`BlobStore` protocol is the same idea for the Hessian
disk tier's binary blobs (:class:`repro.methods.resources.HessianStore`),
plus a *claim* primitive — a fleet-wide advisory lock with a staleness TTL
that lets concurrent workers coalesce on one O(n·d²) Hessian build / O(d³)
factorization instead of each paying it. :func:`make_blob_store` resolves a
target string to a backend: a plain path (directory layout), ``sqlite://``
(blob table in WAL-mode SQLite), or ``http(s)://`` (the distributed
coordinator's blob relay, so a fleet without shared disk still shares one
tier).

Unreadable records and blobs are treated as misses and overwritten, on
every backend.
"""

from __future__ import annotations

import json
import os
import sqlite3
import tempfile
import threading
import time
from pathlib import Path
from typing import Any, Dict, Iterator, Optional, Protocol, Union, runtime_checkable

from ..obs.metrics import METRICS

__all__ = [
    "BACKEND_ENV",
    "BlobStore",
    "CacheBackend",
    "DirectoryBackend",
    "DirectoryBlobStore",
    "ResultCache",
    "SQLiteBackend",
    "SQLiteBlobStore",
    "make_blob_store",
    "make_cache_backend",
]

_SCHEMA = 1

#: Environment variable selecting the record-store backend (``dir``/``sqlite``).
#: The scheduler, the CLI, and the serve daemon all build their
#: :class:`ResultCache` without an explicit backend, so one exported variable
#: switches the whole stack.
BACKEND_ENV = "REPRO_CACHE_BACKEND"

#: Row-delete count past which the SQLite backends VACUUM after a clean.
_VACUUM_THRESHOLD = 64


def _check_hash(job_hash: str) -> str:
    if len(job_hash) < 8 or not all(c in "0123456789abcdef" for c in job_hash):
        raise ValueError(f"malformed job hash {job_hash!r}")
    return job_hash


def _valid_record(record: Any) -> bool:
    return isinstance(record, dict) and record.get("schema") == _SCHEMA


# --------------------------------------------------------------------------
# protocols
# --------------------------------------------------------------------------


@runtime_checkable
class CacheBackend(Protocol):
    """Storage for JSON result records, keyed by content hash.

    Implementations own durability and layout only; identity (hashing),
    schema stamping, and hit/miss accounting stay in :class:`ResultCache`.
    """

    name: str

    def read(self, job_hash: str) -> Optional[Dict[str, Any]]:
        """The stored record, or ``None`` on miss/corruption/schema skew."""
        ...

    def write(self, job_hash: str, record: Dict[str, Any]) -> None:
        """Durably persist ``record`` (atomic per record)."""
        ...

    def remove(self, job_hash: str) -> bool:
        ...

    def entries(self) -> Iterator[Dict[str, Any]]:
        """All readable records, in stable (hash-sorted) order."""
        ...

    def clean(self, older_than: Optional[float] = None) -> int:
        """Delete records (all, or only ones older than ``older_than``
        seconds); returns how many were removed."""
        ...

    def stats(self) -> Dict[str, Any]:
        ...


@runtime_checkable
class BlobStore(Protocol):
    """Binary blobs keyed by content fingerprint, plus build claims.

    ``claim``/``release`` is a fleet-wide advisory lock: the first caller to
    claim a key owns the (expensive) computation behind it, everyone else
    polls until the owner's blob lands or the claim goes stale (``ttl``
    seconds — a crashed owner's claim is broken, never waited on forever).
    """

    def get(self, key: str) -> Optional[bytes]:
        ...

    def put(self, key: str, data: bytes) -> None:
        ...

    def claim(self, key: str, ttl: float = 60.0) -> bool:
        """``True`` if this caller now owns the claim (including by breaking
        a stale one), ``False`` while someone else holds it."""
        ...

    def release(self, key: str) -> None:
        ...

    def clean(self, older_than: Optional[float] = None) -> int:
        ...


# --------------------------------------------------------------------------
# directory backends (the original layout, behavior-identical)
# --------------------------------------------------------------------------


class DirectoryBackend:
    """One JSON file per record at ``<root>/<hh>/<hash>.json``."""

    name = "dir"

    def __init__(self, root: Union[str, os.PathLike]):
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)

    def path_for(self, job_hash: str) -> Path:
        _check_hash(job_hash)
        return self.root / job_hash[:2] / f"{job_hash}.json"

    def read(self, job_hash: str) -> Optional[Dict[str, Any]]:
        return self._load(self.path_for(job_hash))

    @staticmethod
    def _load(path: Path) -> Optional[Dict[str, Any]]:
        try:
            with open(path, encoding="utf-8") as f:
                record = json.load(f)
        except (FileNotFoundError, json.JSONDecodeError, OSError):
            return None
        return record if _valid_record(record) else None

    def write(self, job_hash: str, record: Dict[str, Any]) -> None:
        path = self.path_for(job_hash)
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as f:
                json.dump(record, f, sort_keys=True)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    def remove(self, job_hash: str) -> bool:
        try:
            self.path_for(job_hash).unlink()
            return True
        except FileNotFoundError:
            return False

    def entries(self) -> Iterator[Dict[str, Any]]:
        for path in sorted(self.root.glob("??/*.json")):
            record = self._load(path)
            if record is not None:
                yield record

    def clean(self, older_than: Optional[float] = None) -> int:
        removed = 0
        now = time.time()
        for path in list(self.root.glob("??/*.json")):
            if older_than is not None:
                record = self._load(path)
                age = now - float((record or {}).get("created_at", 0.0))
                if record is not None and age < older_than:
                    continue
            try:
                path.unlink()
                removed += 1
            except OSError:
                pass
        return removed

    def stats(self) -> Dict[str, Any]:
        paths = list(self.root.glob("??/*.json"))
        return {
            "root": str(self.root),
            "backend": self.name,
            "entries": len(paths),
            "bytes": sum(p.stat().st_size for p in paths),
        }


class DirectoryBlobStore:
    """Content-addressed binary blobs at ``<root>/<hh>/<key><suffix>``.

    The Hessian tier's original layout: ``.npz`` blobs, with pre-factor-tier
    ``.npy`` legacy blobs still readable. Claims are ``O_EXCL`` lock files
    under ``<root>/.claims/``; staleness is the lock file's mtime.
    """

    name = "dir"

    def __init__(
        self,
        root: Union[str, os.PathLike],
        suffix: str = ".npz",
        legacy_suffixes: tuple = (".npy",),
    ):
        self.root = Path(root)
        self.suffix = suffix
        self.legacy_suffixes = tuple(legacy_suffixes)

    def _path(self, key: str, suffix: Optional[str] = None) -> Path:
        return self.root / key[:2] / f"{key}{suffix or self.suffix}"

    def get(self, key: str) -> Optional[bytes]:
        for suffix in (self.suffix, *self.legacy_suffixes):
            try:
                return self._path(key, suffix).read_bytes()
            except (FileNotFoundError, OSError):
                continue
        return None

    def put(self, key: str, data: bytes) -> None:
        path = self._path(key)
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
            try:
                with os.fdopen(fd, "wb") as f:
                    f.write(data)
                os.replace(tmp, path)
            except BaseException:
                try:
                    os.unlink(tmp)
                except OSError:
                    pass
                raise
        except OSError:
            pass  # a read-only or full disk never fails the sweep

    # ----------------------------------------------------------------- claims
    def _claim_path(self, key: str) -> Path:
        return self.root / ".claims" / f"{key}.lock"

    def claim(self, key: str, ttl: float = 60.0) -> bool:
        path = self._claim_path(key)
        for attempt in (0, 1):
            try:
                path.parent.mkdir(parents=True, exist_ok=True)
                fd = os.open(path, os.O_WRONLY | os.O_CREAT | os.O_EXCL, 0o644)
                os.write(fd, f"pid-{os.getpid()}".encode())
                os.close(fd)
                return True
            except FileExistsError:
                if attempt:
                    return False
                try:
                    age = time.time() - path.stat().st_mtime
                except OSError:
                    continue  # vanished between open and stat: retry
                if age <= ttl:
                    return False
                # Stale claim — the owner crashed mid-build. Break it and
                # retry the exclusive create (a racing breaker simply loses
                # the second O_EXCL round and keeps waiting).
                try:
                    path.unlink()
                except OSError:
                    pass
                METRICS.incr("cache.backend.claims_broken")
            except OSError:
                return True  # unwritable tier: claims degrade to no-ops
        return False

    def release(self, key: str) -> None:
        try:
            self._claim_path(key).unlink()
        except OSError:
            pass

    # ------------------------------------------------------------ maintenance
    def clean(self, older_than: Optional[float] = None) -> int:
        removed = 0
        # Maintenance-only age policy; never runs inside execute_job.
        now = time.time()
        patterns = [f"??/*{self.suffix}"] + [f"??/*{s}" for s in self.legacy_suffixes]
        for pattern in patterns:
            for blob in list(self.root.glob(pattern)):
                try:
                    if older_than is not None and now - blob.stat().st_mtime < older_than:
                        continue
                    blob.unlink()
                    removed += 1
                except OSError:
                    pass
        for stray in list(self.root.glob(".claims/*.lock")):
            try:
                if older_than is None or now - stray.stat().st_mtime >= older_than:
                    stray.unlink()
            except OSError:
                pass
        for shard in [*self.root.glob("??"), *self.root.glob(".claims")]:
            try:
                shard.rmdir()  # only succeeds when empty
            except OSError:
                pass
        return removed


# --------------------------------------------------------------------------
# SQLite backends (WAL mode, concurrent writers, indexed maintenance)
# --------------------------------------------------------------------------


class _SQLiteBase:
    """Shared connection plumbing: one WAL-mode connection per thread.

    ``sqlite3`` connections aren't thread-shareable; a thread-local one per
    handler/worker thread plus WAL journaling gives concurrent readers and
    a single uncontended writer at a time (writers queue on the database
    lock with a busy timeout instead of failing).
    """

    _DDL: str = ""

    def __init__(self, path: Union[str, os.PathLike]):
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._local = threading.local()

    def _conn(self) -> sqlite3.Connection:
        conn = getattr(self._local, "conn", None)
        if conn is None:
            conn = sqlite3.connect(str(self.path), timeout=30.0)
            conn.isolation_level = None  # autocommit; VACUUM needs it
            conn.execute("PRAGMA journal_mode=WAL")
            conn.execute("PRAGMA synchronous=NORMAL")
            conn.executescript(self._DDL)
            self._local.conn = conn
        return conn

    def _maybe_vacuum(self, removed: int) -> None:
        if removed >= _VACUUM_THRESHOLD:
            self._conn().execute("VACUUM")
            METRICS.incr("cache.backend.vacuums")

    def _file_bytes(self) -> int:
        total = 0
        for suffix in ("", "-wal", "-shm"):
            try:
                total += os.stat(f"{self.path}{suffix}").st_size
            except OSError:
                pass
        return total


class SQLiteBackend(_SQLiteBase):
    """Result records in one ``cache.db`` table, indexed by age."""

    name = "sqlite"
    FILENAME = "cache.db"

    _DDL = """
    CREATE TABLE IF NOT EXISTS records (
        hash TEXT PRIMARY KEY,
        created_at REAL NOT NULL,
        record TEXT NOT NULL
    );
    CREATE INDEX IF NOT EXISTS idx_records_created ON records(created_at);
    """

    def __init__(self, root: Union[str, os.PathLike]):
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        super().__init__(self.root / self.FILENAME)

    def read(self, job_hash: str) -> Optional[Dict[str, Any]]:
        _check_hash(job_hash)
        row = self._conn().execute(
            "SELECT record FROM records WHERE hash = ?", (job_hash,)
        ).fetchone()
        if row is None:
            return None
        try:
            record = json.loads(row[0])
        except json.JSONDecodeError:
            return None
        return record if _valid_record(record) else None

    def write(self, job_hash: str, record: Dict[str, Any]) -> None:
        _check_hash(job_hash)
        self._conn().execute(
            "INSERT OR REPLACE INTO records(hash, created_at, record) VALUES (?, ?, ?)",
            (
                job_hash,
                float(record.get("created_at", 0.0)),
                json.dumps(record, sort_keys=True),
            ),
        )

    def remove(self, job_hash: str) -> bool:
        _check_hash(job_hash)
        cur = self._conn().execute("DELETE FROM records WHERE hash = ?", (job_hash,))
        return bool(cur.rowcount)

    def entries(self) -> Iterator[Dict[str, Any]]:
        for (raw,) in self._conn().execute(
            "SELECT record FROM records ORDER BY hash"
        ):
            try:
                record = json.loads(raw)
            except json.JSONDecodeError:
                continue
            if _valid_record(record):
                yield record

    def clean(self, older_than: Optional[float] = None) -> int:
        conn = self._conn()
        if older_than is None:
            cur = conn.execute("DELETE FROM records")
        else:
            # The indexed query `repro-sweep clean` runs — no record parse,
            # no directory scan, just the created_at index.
            cutoff = time.time() - older_than
            cur = conn.execute(
                "DELETE FROM records WHERE created_at <= ?", (cutoff,)
            )
        removed = cur.rowcount
        self._maybe_vacuum(removed)
        return removed

    def stats(self) -> Dict[str, Any]:
        (entries,) = self._conn().execute("SELECT COUNT(*) FROM records").fetchone()
        return {
            "root": str(self.root),
            "backend": self.name,
            "entries": int(entries),
            "bytes": self._file_bytes(),
        }


class SQLiteBlobStore(_SQLiteBase):
    """Hessian-tier blobs + claims in one WAL-mode database file."""

    name = "sqlite"

    _DDL = """
    CREATE TABLE IF NOT EXISTS blobs (
        key TEXT PRIMARY KEY,
        created_at REAL NOT NULL,
        data BLOB NOT NULL
    );
    CREATE INDEX IF NOT EXISTS idx_blobs_created ON blobs(created_at);
    CREATE TABLE IF NOT EXISTS claims (
        key TEXT PRIMARY KEY,
        created_at REAL NOT NULL
    );
    """

    def get(self, key: str) -> Optional[bytes]:
        row = self._conn().execute(
            "SELECT data FROM blobs WHERE key = ?", (key,)
        ).fetchone()
        return bytes(row[0]) if row is not None else None

    def put(self, key: str, data: bytes) -> None:
        self._conn().execute(
            "INSERT OR REPLACE INTO blobs(key, created_at, data) VALUES (?, ?, ?)",
            (key, time.time(), sqlite3.Binary(data)),
        )

    def claim(self, key: str, ttl: float = 60.0) -> bool:
        conn = self._conn()
        now = time.time()
        cur = conn.execute(
            "INSERT OR IGNORE INTO claims(key, created_at) VALUES (?, ?)",
            (key, now),
        )
        if cur.rowcount:
            return True
        cur = conn.execute(
            "UPDATE claims SET created_at = ? WHERE key = ? AND created_at <= ?",
            (now, key, now - ttl),
        )
        if cur.rowcount:
            METRICS.incr("cache.backend.claims_broken")
            return True
        return False

    def release(self, key: str) -> None:
        self._conn().execute("DELETE FROM claims WHERE key = ?", (key,))

    def clean(self, older_than: Optional[float] = None) -> int:
        conn = self._conn()
        if older_than is None:
            cur = conn.execute("DELETE FROM blobs")
            conn.execute("DELETE FROM claims")
        else:
            cutoff = time.time() - older_than
            cur = conn.execute("DELETE FROM blobs WHERE created_at <= ?", (cutoff,))
            conn.execute("DELETE FROM claims WHERE created_at <= ?", (cutoff,))
        removed = cur.rowcount
        self._maybe_vacuum(removed)
        return removed


# --------------------------------------------------------------------------
# factories
# --------------------------------------------------------------------------


def make_cache_backend(name: str, root: Union[str, os.PathLike]) -> CacheBackend:
    """A record-store backend by name (``dir``/``directory`` or ``sqlite``)."""
    normalized = (name or "dir").strip().lower()
    if normalized in ("dir", "directory", "fs"):
        return DirectoryBackend(root)
    if normalized == "sqlite":
        return SQLiteBackend(root)
    raise ValueError(
        f"unknown cache backend {name!r}; known: dir, sqlite"
    )


def make_blob_store(target: Union[str, os.PathLike, BlobStore]) -> BlobStore:
    """A blob store from a target: a :class:`BlobStore` passes through; a
    ``sqlite://<path>`` URL opens a blob table; an ``http(s)://`` URL talks
    to a distributed coordinator's blob relay; anything else is a directory
    root in the original tier layout."""
    if isinstance(target, BlobStore) and not isinstance(target, (str, os.PathLike)):
        return target
    spec = str(target)
    if spec.startswith("sqlite://"):
        return SQLiteBlobStore(spec[len("sqlite://"):])
    if spec.startswith(("http://", "https://")):
        from ..dist.client import HttpBlobStore  # local import: dist is optional

        return HttpBlobStore(spec)
    return DirectoryBlobStore(spec)


# --------------------------------------------------------------------------
# the cache frontend
# --------------------------------------------------------------------------


class ResultCache:
    """Dictionary-flavored view of the result store, keyed by job hash.

    Identity, schema stamping, and traffic accounting live here; storage is
    the injected :class:`CacheBackend` (default: resolved from the
    ``REPRO_CACHE_BACKEND`` environment variable, falling back to ``sqlite``
    when the root already holds a ``cache.db`` and the original directory
    layout otherwise — an existing cache keeps working either way).

    Lookup traffic is counted per instance (``hits``/``misses``/``puts``)
    and published to the process-wide :data:`repro.obs.metrics.METRICS`
    registry under ``result_cache.*``. Maintenance scans (``entries`` /
    ``clean`` / ``stats``) deliberately don't count — only actual lookups do.
    """

    def __init__(
        self,
        root: Union[str, os.PathLike],
        backend: Union[str, CacheBackend, None] = None,
    ):
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        if backend is None or (isinstance(backend, str) and backend in ("", "auto")):
            env = os.environ.get(BACKEND_ENV, "").strip()
            backend = env or (
                "sqlite"
                if (self.root / SQLiteBackend.FILENAME).exists()
                else "dir"
            )
        if isinstance(backend, str):
            backend = make_cache_backend(backend, self.root)
        self.backend: CacheBackend = backend
        # One instance serves every worker thread of a sweep; the counters
        # are the only mutable state (backend writes are atomic on their own).
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.puts = 0

    @property
    def backend_name(self) -> str:
        return getattr(self.backend, "name", type(self.backend).__name__)

    def hessian_tier_target(self) -> str:
        """The disk-tier target string matching this cache's backend — what
        the scheduler exports as ``REPRO_HESSIAN_DIR`` so the Hessian store
        rides the same storage the result records do."""
        if self.backend_name == "sqlite":
            return f"sqlite://{self.root / 'hessians.db'}"
        return str(self.root / "hessians")

    # ------------------------------------------------------------- addressing
    def path_for(self, job_hash: str) -> Path:
        """The record's address in the canonical directory layout (also the
        hash validator — malformed hashes raise regardless of backend)."""
        _check_hash(job_hash)
        return self.root / job_hash[:2] / f"{job_hash}.json"

    # ------------------------------------------------------------------ reads
    def get(self, job_hash: str) -> Optional[Dict[str, Any]]:
        """The stored record, or ``None`` on miss/corruption."""
        record = self.backend.read(job_hash)
        if record is None:
            with self._lock:
                self.misses += 1
            METRICS.incr("result_cache.misses")
        else:
            with self._lock:
                self.hits += 1
            METRICS.incr("result_cache.hits")
        return record

    def __contains__(self, job_hash: str) -> bool:
        return self.get(job_hash) is not None

    def entries(self) -> Iterator[Dict[str, Any]]:
        """All readable records, in stable (hash-sorted) order."""
        return self.backend.entries()

    # ----------------------------------------------------------------- writes
    def put(self, job_hash: str, record: Dict[str, Any]) -> Path:
        """Atomically persist ``record`` under ``job_hash``; returns its
        canonical (directory-layout) address."""
        with self._lock:
            self.puts += 1
        METRICS.incr("result_cache.puts")
        path = self.path_for(job_hash)
        record = dict(record)
        record.setdefault("schema", _SCHEMA)
        record.setdefault("hash", job_hash)
        record.setdefault("created_at", time.time())
        self.backend.write(job_hash, record)
        return path

    # ------------------------------------------------------------ maintenance
    def remove(self, job_hash: str) -> bool:
        return self.backend.remove(job_hash)

    def clean(self, older_than: Optional[float] = None) -> int:
        """Delete cached results; with ``older_than`` (seconds), only stale
        ones. Returns the number of records removed."""
        return self.backend.clean(older_than)

    def stats(self) -> Dict[str, Any]:
        """Entry count and on-disk footprint."""
        return self.backend.stats()
