"""Accelerator walkthrough + performance study on the repro.hw API.

Part 1 reproduces the paper's Fig. 8 end-to-end example functionally:
an outlier's Upper/Lower halves flow through INT PEs and are recombined
by ReCoN into the exact FP partial sum.

Part 2 runs the cycle-level simulator through the registry-driven API:
LLaMA-3-8B decode on the 64x64 MicroScopiQ accelerator vs the baseline
accelerators — one `simulate(arch, workload)` call per design.

Part 3 sweeps the ReCoN design variants (Fig. 15/18) and shows the
per-substrate workload generators (CNN im2col GEMM, SSM scan).

Part 4 runs the same comparison as cached pipeline jobs — the form the
benchmarks use (`repro-sweep sweep --archs ...` from the CLI).

Run:  python examples/accelerator_simulation.py
"""

import tempfile

from repro.hw import (
    ARCHS,
    AcceleratorConfig,
    GEOMETRIES,
    OutlierHalfProduct,
    ReCoN,
    build_workload,
    layer_specs,
    microscopiq_area,
    simulate,
    simulate_layers,
)
from repro.pipeline import ExperimentSpec, run_sweep

# --- Part 1: the Fig. 8 example ------------------------------------------
print("Fig. 8 walkthrough: outlier 1.5 (binary 1.10), iAct=32, iAcc=8")
iact, iaccs = 32, [8, 10, 16, 16]
upper = OutlierHalfProduct("upper", res=1 * iact, iacc=iaccs[0], sign=1, iact=iact, magnitude_bits=1)
lower = OutlierHalfProduct("lower", res=0 * iact, iacc=iaccs[3], sign=1, iact=iact, magnitude_bits=1)
ports = [upper, 1 * iact + iaccs[1], -1 * iact + iaccs[2], lower]
out = ReCoN(4).route(ports)
print(f"  ReCoN output: {out}  (expected outlier partial sum 56) \n")
assert out[0] == 56.0

# --- Part 2: performance comparison via the registry ----------------------
workload = build_workload("lm", "llama3-8b", prefill=1, decode_tokens=32)
print(f"Decode inference, {workload.name} geometry, 64x64 array @ 1 GHz:")
systolic = [name for name, spec in ARCHS.items() if spec.kind == "systolic"]
results = {name: simulate(name, workload) for name in systolic}
v2 = results["microscopiq-v2"]
for name, r in sorted(results.items(), key=lambda kv: kv[1].cycles):
    print(
        f"  {name:16s} latency={r.latency_ms:9.1f} ms  "
        f"energy={r.energy.total_nj / 1e6:8.1f} mJ  "
        f"ebw={r.ebw_bits:5.2f} b/w  (x{r.cycles / v2.cycles:.2f} vs v2)"
    )

# --- Part 3: design variants + per-substrate workloads --------------------
print("\nReCoN design variants (Fig. 15/18): units vs conflicts & area")
specs = layer_specs(GEOMETRIES["llama3-8b"], bit_budget=2)
for n in (1, 2, 4, 8):
    stats = simulate_layers(specs, 1, AcceleratorConfig(n_recon=n))
    area = microscopiq_area(n_recon=n).total_mm2
    print(
        f"  {n} ReCoN: conflicts={stats.conflict_pct:5.2f}%  "
        f"compute area={area:.4f} mm^2"
    )

print("\nPer-substrate workloads on microscopiq-v2 (same simulate() call):")
for sub, family in (("cnn", "resnet50"), ("ssm", "vmamba-s"), ("vlm", "vila-7b")):
    r = simulate("microscopiq-v2", build_workload(sub, family, prefill=1, decode_tokens=1))
    print(f"  {sub:4s} {family:10s} cycles={r.cycles:12.0f}  "
          f"energy={r.energy.total_nj / 1e3:10.1f} uJ")

# --- Part 4: the same points as cached pipeline jobs ----------------------
print("\nPipeline-native hardware sweep (content-hashed, cached jobs):")
hw_specs = [
    ExperimentSpec(family="llama3-8b", arch=arch,
                   hw_kwargs=(("decode_tokens", 32), ("prefill", 1)))
    for arch in ("microscopiq-v1", "microscopiq-v2", "olive")
]
with tempfile.TemporaryDirectory() as cache_dir:
    first = run_sweep(hw_specs, cache_dir=cache_dir)
    replay = run_sweep(hw_specs, cache_dir=cache_dir)
for outcome in first.outcomes:
    m = outcome.metrics
    print(f"  {outcome.job.label:60s} latency={m['latency_ms']:9.1f} ms")
print(f"  replay served from cache: {replay.cache_hits}/{len(replay.outcomes)}")
assert replay.cache_hits == len(replay.outcomes)
for spec, outcome in zip(hw_specs, first.outcomes):
    assert outcome.metrics["latency_ms"] == results[spec.arch].latency_ms
