"""Layer → systolic-array mapping descriptors.

A :class:`LayerSpec` is the bridge between the quantizer and the performance
model: weight-matrix geometry, bit budget, effective bit-width (memory
traffic), and the outlier micro-block density that determines ReCoN demand.

Mapping convention (paper Fig. 8): for ``y = W x`` with ``W [d_out, d_in]``,
PE *rows* take the reduction dimension (iActs broadcast along a row, partial
sums accumulate down the columns) and PE *columns* take output channels; in
2-bit mode each PE packs two adjacent output channels, doubling tile width.

**Outlier-aware packing.** Reduction order is commutative, so the offline
scheduler is free to permute which μBs land on which PE rows; it packs
outlier-containing μBs into as few rows as possible so that only those rows
detour through ReCoN (this is the mapping under which the paper's <3%
ReCoN conflict rates and small latency overheads are achievable). A tile
holding ``u`` outlier μBs therefore has ``ceil(u * B_μ / tile_cols)`` rows
needing ReCoN.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..quant.packed import PackedLayer

__all__ = ["LayerSpec"]


@dataclass
class LayerSpec:
    """Geometry + outlier structure of one quantized linear layer."""

    name: str
    d_out: int
    d_in: int
    bit_budget: int
    ebw: float
    outlier_ub_fraction: float  # fraction of μBs containing outliers
    micro_block: int = 8
    count: int = 1  # identical instances of this layer in the model

    def __post_init__(self) -> None:
        if not 0.0 <= self.outlier_ub_fraction <= 1.0:
            raise ValueError(
                f"outlier_ub_fraction must be in [0, 1], got {self.outlier_ub_fraction}"
            )

    @property
    def weight_bits(self) -> float:
        """Stored weight bits of one instance, metadata included."""
        return self.ebw * self.d_out * self.d_in

    @property
    def macs_per_input(self) -> int:
        """MACs per streamed input vector, one instance."""
        return self.d_out * self.d_in

    def outlier_rows_in_tile(self, tile_rows: int, tile_cols: int) -> int:
        """PE rows needing ReCoN in a tile, under outlier-aware packing."""
        ubs = tile_rows * tile_cols / self.micro_block
        outlier_ubs = self.outlier_ub_fraction * ubs
        return min(tile_rows, int(np.ceil(outlier_ubs * self.micro_block / tile_cols)))

    @classmethod
    def from_packed(cls, name: str, packed: PackedLayer, count: int = 1) -> LayerSpec:
        """Build from a quantized :class:`PackedLayer`."""
        return cls(
            name=name,
            d_out=packed.d_out,
            d_in=packed.d_in,
            bit_budget=packed.config.bit_budget,
            ebw=packed.ebw(),
            outlier_ub_fraction=packed.outlier_ub_fraction(),
            micro_block=packed.config.micro_block,
            count=count,
        )

    @classmethod
    def synthetic(
        cls,
        name: str,
        d_out: int,
        d_in: int,
        bit_budget: int = 2,
        outlier_fraction: float = 0.01,
        micro_block: int = 8,
        count: int = 1,
        ebw: float | None = None,
    ) -> LayerSpec:
        """Spec from geometry + an iid per-weight outlier rate."""
        ub_frac = 1.0 - (1.0 - outlier_fraction) ** micro_block
        if ebw is None:
            from ..formats.ebw import ebw_inlier, ebw_outlier

            ebw = ub_frac * ebw_outlier(bit_budget, micro_block) + (
                1 - ub_frac
            ) * ebw_inlier(bit_budget)
        return cls(name, d_out, d_in, bit_budget, float(ebw), ub_frac, micro_block, count)
