"""Tests for MX-INT and MX-FP block quantization."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.formats import (
    E1M2,
    E3M4,
    outlier_format_for_bits,
    quantize_mx_fp,
    quantize_mx_fp_group,
    quantize_mx_int,
)


class TestOutlierFormatSelection:
    def test_four_bits_is_e1m2(self):
        assert outlier_format_for_bits(4) is E1M2

    def test_eight_bits_is_e3m4(self):
        assert outlier_format_for_bits(8) is E3M4

    def test_rejects_other_widths(self):
        with pytest.raises(ValueError):
            outlier_format_for_bits(6)


class TestMxInt:
    def test_scale_is_power_of_two(self):
        rng = np.random.default_rng(0)
        x = rng.normal(0, 1, 256)
        res = quantize_mx_int(x, 4, 128)
        assert res.scale_exp.dtype == np.int32  # exponent, scale = 2**e

    def test_group_count(self):
        x = np.zeros(300)
        res = quantize_mx_int(x, 4, 128)
        assert res.scale_exp.shape[-1] == 3  # 128 + 128 + 44 (ragged)

    def test_codes_within_symmetric_range(self):
        rng = np.random.default_rng(1)
        x = rng.normal(0, 1, 256)
        res = quantize_mx_int(x, 2, 64)
        assert res.codes.max() <= 1 and res.codes.min() >= -1

    def test_dequant_error_bounded(self):
        rng = np.random.default_rng(2)
        x = rng.normal(0, 1, 128)
        res = quantize_mx_int(x, 8, 128)
        # pow2 scale is at most 2x the float-optimal scale
        step = 2.0 * np.abs(x).max() / 127
        assert np.max(np.abs(res.dequant - x)) <= step / 2 + 1e-12

    def test_zero_group_round_trips(self):
        res = quantize_mx_int(np.zeros(16), 4, 8)
        assert np.all(res.dequant == 0.0)

    def test_multirow(self):
        rng = np.random.default_rng(3)
        x = rng.normal(0, 1, (4, 64))
        res = quantize_mx_int(x, 4, 32)
        assert res.dequant.shape == x.shape
        assert res.scale_exp.shape == (4, 2)


class TestMxFpGroup:
    def test_fig3_example_values(self):
        """The Step 2 example of Fig. 3(a): outliers {76.3, -89.4, 59.3}."""
        res = quantize_mx_fp_group(np.array([76.3, -89.4, 59.3]), E1M2)
        # All reconstructions within one mantissa step (25%) of the input.
        assert np.all(np.abs(res.dequant - [76.3, -89.4, 59.3]) / 89.4 < 0.25)
        assert res.signs.tolist() == [1.0, -1.0, 1.0]

    def test_single_value_high_accuracy_e3m4(self):
        res = quantize_mx_fp_group(np.array([0.1783]), E3M4)
        assert res.dequant[0] == pytest.approx(0.1783, rel=1 / 16)

    def test_shared_exponent_is_common(self):
        res = quantize_mx_fp_group(np.array([3.0, 3.2, 2.9]), E1M2)
        assert 0 <= res.mu_x < E1M2.exp_levels

    def test_empty_group_rejected(self):
        with pytest.raises(ValueError):
            quantize_mx_fp_group(np.array([]), E1M2)

    def test_zero_group(self):
        res = quantize_mx_fp_group(np.zeros(4), E1M2)
        assert np.all(res.dequant == 0.0)

    def test_sign_preservation(self):
        vals = np.array([-5.0, 4.0, -3.9])
        res = quantize_mx_fp_group(vals, E1M2)
        assert np.all(np.sign(res.dequant) == np.sign(vals))

    def test_scale_exp_combines_levels(self):
        res = quantize_mx_fp_group(np.array([100.0]), E1M2)
        assert res.scale_exp == res.level1_exp + res.mu_x

    @given(
        st.lists(
            st.floats(0.05, 50.0, allow_nan=False), min_size=1, max_size=8
        ),
        st.sampled_from([4, 8]),
    )
    @settings(max_examples=60, deadline=None)
    def test_relative_error_bound(self, mags, bits):
        """Similar-magnitude groups reconstruct within one mantissa step."""
        fmt = outlier_format_for_bits(bits)
        vals = np.array(mags)
        res = quantize_mx_fp_group(vals, fmt)
        vmax = np.abs(vals).max()
        # Worst case: value at the shared-exponent floor or clipped; bound
        # error by a full exponent step relative to the group max.
        assert np.max(np.abs(res.dequant - vals)) <= vmax + 1e-9

    @given(st.floats(0.01, 100.0, allow_nan=False))
    @settings(max_examples=60, deadline=None)
    def test_singleton_relative_error(self, v):
        res = quantize_mx_fp_group(np.array([v]), E3M4)
        assert abs(res.dequant[0] - v) / v <= 1 / 16 + 1e-9


class TestDiversityEffect:
    def test_error_grows_with_group_diversity(self):
        """Fig. 14's mechanism: wider groups -> more diverse outliers ->
        larger shared-μX error."""
        rng = np.random.default_rng(0)
        tight = rng.uniform(3.0, 4.0, 8)
        wide = rng.uniform(0.8, 12.0, 8)
        err_tight = np.linalg.norm(
            quantize_mx_fp_group(tight, E1M2).dequant - tight
        ) / np.linalg.norm(tight)
        err_wide = np.linalg.norm(
            quantize_mx_fp_group(wide, E1M2).dequant - wide
        ) / np.linalg.norm(wide)
        assert err_wide > err_tight


class TestDenseMxFp:
    def test_shape_preserved(self):
        rng = np.random.default_rng(0)
        x = rng.normal(0, 1, (4, 32))
        out = quantize_mx_fp(x, 4, 8)
        assert out.shape == x.shape

    def test_zero_blocks_pass_through(self):
        x = np.zeros((2, 16))
        assert np.all(quantize_mx_fp(x, 4, 8) == 0.0)

    def test_smaller_groups_reduce_error(self):
        rng = np.random.default_rng(1)
        x = rng.lognormal(0, 1.0, (2, 128)) * np.sign(rng.normal(size=(2, 128)))
        e_small = np.linalg.norm(quantize_mx_fp(x, 8, 8) - x)
        e_big = np.linalg.norm(quantize_mx_fp(x, 8, 128) - x)
        assert e_small < e_big
