"""Tests for the multi-precision PE (Eq. 5 multiplier tree)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.accelerator import (
    MODE_2B,
    MODE_4B,
    MultiPrecisionPE,
    OutlierHalfProduct,
    pe_multiply_2b,
    pe_multiply_4b,
)


class TestMultiplierTree:
    def test_exhaustive_4b(self):
        """All 16 weights x all 256 iActs: the tree is bit-exact."""
        for w in range(-8, 8):
            for a in range(-128, 128):
                assert pe_multiply_4b(w, a) == w * a

    @given(st.integers(-2, 1), st.integers(-2, 1), st.integers(-128, 127))
    @settings(max_examples=100, deadline=None)
    def test_2b_pair_exact(self, wh, wl, a):
        rh, rl = pe_multiply_2b(wh, wl, a)
        assert rh == wh * a and rl == wl * a

    def test_rejects_out_of_range_weight(self):
        with pytest.raises(ValueError):
            pe_multiply_4b(8, 0)

    def test_rejects_out_of_range_iact(self):
        with pytest.raises(ValueError):
            pe_multiply_4b(0, 200)


class TestPE:
    def test_inlier_4b_accumulates(self):
        pe = MultiPrecisionPE(weights=5, mode=MODE_4B)
        assert pe.step(iact=10, iacc=7) == 57

    def test_inlier_2b_dual_accumulate(self):
        pe = MultiPrecisionPE(weights=(1, -1), mode=MODE_2B)
        hi, lo = pe.step(iact=10, iacc=(100, 200))
        assert hi == 110 and lo == 190

    def test_outlier_half_offloads(self):
        pe = MultiPrecisionPE(weights=1, mode=MODE_4B, outlier_half="upper")
        out = pe.step(iact=32, iacc=8)
        assert isinstance(out, OutlierHalfProduct)
        assert out.res == 32 and out.iacc == 8 and out.magnitude_bits == 2

    def test_outlier_2b_half(self):
        pe = MultiPrecisionPE(weights=(1, 0), mode=MODE_2B, outlier_half="lower")
        out = pe.step(iact=16, iacc=3)
        assert isinstance(out, OutlierHalfProduct)
        assert out.magnitude_bits == 1

    def test_rejects_bad_mode(self):
        with pytest.raises(ValueError):
            MultiPrecisionPE(weights=0, mode="16b")

    def test_rejects_bad_half(self):
        with pytest.raises(ValueError):
            MultiPrecisionPE(weights=0, outlier_half="middle")
