"""The distributed wire format: tasks and outcomes as JSON.

A *task* is one of the two closure-free units the sweep scheduler already
dispatches to its pools — a full :class:`~repro.pipeline.spec.Job` (run by
:func:`~repro.pipeline.runner.execute_job`) or a codesign hardware stage
(:class:`~repro.pipeline.runner._HwStageTask`, run by its stage kernel).
Both serialize losslessly: specs ride as their ``dataclasses.asdict`` form
and are rebuilt through :func:`repro.serve.server.build_experiment_spec`
(the same normalization the sweep service uses), so a decoded job's
``job_hash`` — and therefore its spawned RNG seed — is byte-identical to
the submitter's. That is the whole bit-identity story: a worker on another
host derives exactly the seed a local executor would have.

Task *keys* reuse the in-flight claim book's namespacing (`job_hash` for
jobs, ``hw:<stage_hash>`` for hardware stages), so the coordinator's
fleet-wide claims speak the same addresses the in-process
``_InflightBook`` does.

An *outcome* is the JSON shadow of :class:`~repro.pipeline.executor.JobOutcome`
minus the job object itself (the collector re-attaches its own): metrics or
error, seconds, worker identity, and the spans/counters the worker captured
so ``repro-sweep report`` attributes fleet work per worker.
"""

from __future__ import annotations

from dataclasses import asdict
from typing import Any, Dict, Union

from ..pipeline.executor import JobOutcome
from ..pipeline.runner import _HwStageTask, execute_job, _hw_stage_kernel
from ..pipeline.spec import Job

__all__ = [
    "decode_outcome",
    "decode_task",
    "encode_outcome",
    "encode_task",
    "kernel_for",
    "task_key",
]

Task = Union[Job, _HwStageTask]


def task_key(task: Task) -> str:
    """The task's fleet-wide claim/dedup address (the in-flight book's
    namespacing: job hashes bare, hardware stages ``hw:``-prefixed)."""
    if isinstance(task, _HwStageTask):
        return f"hw:{task.stage_hash}"
    return task.job_hash


def encode_task(task: Task) -> Dict[str, Any]:
    if isinstance(task, _HwStageTask):
        return {
            "kind": "hw_stage",
            "stage_hash": task.stage_hash,
            "job": _encode_job(task.job),
            "layers": [
                [name, [[k, v] for k, v in stats]] for name, stats in task.layers
            ],
        }
    return {"kind": "job", **_encode_job(task)}


def _encode_job(job: Job) -> Dict[str, Any]:
    return {
        "spec": asdict(job.spec),
        "seed": job.seed,
        "version": job.version,
    }


def _decode_job(payload: Dict[str, Any]) -> Job:
    from ..serve.server import build_experiment_spec  # shared normalization

    return Job(
        spec=build_experiment_spec(payload["spec"]),
        seed=int(payload.get("seed", 0)),
        version=str(payload.get("version", "")),
    )


def decode_task(payload: Dict[str, Any]) -> Task:
    kind = payload.get("kind", "job")
    if kind == "job":
        return _decode_job(payload)
    if kind == "hw_stage":
        layers = {
            str(name): {str(k): v for k, v in stats}
            for name, stats in payload.get("layers", [])
        }
        return _HwStageTask(
            job=_decode_job(payload["job"]),
            stage_hash=str(payload["stage_hash"]),
            layers=_HwStageTask.pack_layers(layers),
        )
    raise ValueError(f"unknown task kind {kind!r}")


def kernel_for(task: Task):
    """The canonical kernel for a decoded task — the only two functions a
    worker will ever run (arbitrary callables don't cross the wire)."""
    if isinstance(task, _HwStageTask):
        return _hw_stage_kernel
    return execute_job


def encode_outcome(outcome: JobOutcome) -> Dict[str, Any]:
    return {
        "metrics": outcome.metrics,
        "error": outcome.error,
        "seconds": outcome.seconds,
        "from_cache": outcome.from_cache,
        "worker": outcome.worker,
        "spans": outcome.spans,
        "counters": outcome.counters,
    }


def decode_outcome(payload: Dict[str, Any], task: Task) -> JobOutcome:
    """A :class:`JobOutcome` over the collector's own task object, so the
    scheduler's bookkeeping (hashes, labels, stage settlement) sees exactly
    the objects it dispatched."""
    return JobOutcome(
        job=task,
        metrics=payload.get("metrics"),
        error=payload.get("error"),
        seconds=float(payload.get("seconds", 0.0)),
        from_cache=bool(payload.get("from_cache", False)),
        worker=str(payload.get("worker", "")),
        spans=payload.get("spans"),
        counters=payload.get("counters"),
    )
