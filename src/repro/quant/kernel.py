"""Shared block-loop scaffolding for the GPTQ-family weight quantizers.

MicroScopiQ and the block-structured baselines (GPTQ, OliVe, SDQ) all walk
the input (dot-product) dimension in fixed-width column blocks and run the
same outer stages: **separate** outliers with the 3σ rule, fit a scale,
quantize, and — for the Hessian-aware methods — **compensate** by pushing
each block's quantization error onto not-yet-quantized columns through the
inverse-Hessian Cholesky factor (the OBS update). :class:`BlockQuantKernel`
owns that scaffolding once; each method supplies only its per-stage math
(scale fitting, pruning, outlier encoding), so the block-loop plumbing is
not re-implemented per baseline.
"""

from __future__ import annotations

from typing import Iterator, Tuple

import numpy as np

from .outliers import outlier_mask

__all__ = ["BlockQuantKernel"]


class BlockQuantKernel:
    """Column-block walk + outlier separation + OBS error compensation.

    The kernel is stateless apart from its configuration; the same instance
    can drive any number of matrices. Stages it provides:

    * :meth:`blocks` — the ``[lo, hi)`` column ranges of the block walk;
    * :meth:`separate` — the 3σ outlier mask of one block (stage 1 of
      Algorithm 1, and the shared detection rule of OliVe/SDQ);
    * :meth:`propagate_block_error` — the GPTQ/OBS compensation sweep for
      one quantized block (stage 5), with the sequential within-block
      conditioning GPTQ's Cholesky factorization requires.
    """

    def __init__(
        self,
        block_size: int,
        sigma_threshold: float = 3.0,
        detect_outliers: bool = True,
    ):
        if block_size < 1:
            raise ValueError(f"block_size must be >= 1, got {block_size}")
        self.block_size = int(block_size)
        self.sigma_threshold = float(sigma_threshold)
        self.detect_outliers = bool(detect_outliers)

    def blocks(self, d_in: int) -> Iterator[Tuple[int, int]]:
        """Yield the ``[lo, hi)`` column ranges of the block walk."""
        for lo in range(0, d_in, self.block_size):
            yield lo, min(lo + self.block_size, d_in)

    def separate(self, block: np.ndarray) -> np.ndarray:
        """Stage *separate*: the per-row 3σ outlier mask of one block."""
        if not self.detect_outliers:
            return np.zeros(block.shape, dtype=bool)
        return outlier_mask(block, self.sigma_threshold, axis=-1)

    @staticmethod
    def propagate_block_error(
        w: np.ndarray, q: np.ndarray, u_factor: np.ndarray, lo: int, hi: int
    ) -> None:
        """Stage *compensate*: OBS error propagation for columns ``[lo, hi)``.

        ``w[:, lo:hi]`` must still hold the pre-quantization (compensated)
        weights and ``q[:, lo:hi]`` their quantized values. Q for the block
        may have been chosen jointly from that snapshot, but the error terms
        must follow the sequential Cholesky conditioning: column ``p``'s
        error is measured against the weights *after* columns ``< p`` inside
        the block have pushed their updates (a local working copy), while
        updates beyond the block land directly on ``w``. With ``hi == lo+1``
        this degenerates to GPTQ's plain per-column update.
        """
        d_in = w.shape[1]
        w_work = w[:, lo:hi].copy()
        for p in range(lo, hi):
            j = p - lo
            err = (w_work[:, j] - q[:, p]) / u_factor[p, p]
            if j + 1 < w_work.shape[1]:
                w_work[:, j + 1 :] -= np.outer(err, u_factor[p, p + 1 : hi])
            if hi < d_in:
                w[:, hi:] -= np.outer(err, u_factor[p, hi:])

    @staticmethod
    def propagate_block_error_gemm(
        w: np.ndarray, q: np.ndarray, u_factor: np.ndarray, lo: int, hi: int
    ) -> None:
        """Blocked two-phase form of :meth:`propagate_block_error`.

        Phase 1 runs the sequential Cholesky conditioning only on the small
        ``[d_out, hi-lo]`` working copy, collecting every column's error term;
        phase 2 pushes all trailing-column updates at once through a single
        ``errs @ u_factor[lo:hi, hi:]`` GEMM instead of one rank-1 update per
        column. The error terms are computed identically (the working copy
        never reads trailing columns), so the only float difference is the
        summation order of the trailing updates — asserted bit-identical to
        the reference on every golden snapshot. With ``hi == lo+1`` the GEMM
        is an outer product and the two forms are trivially identical.
        """
        d_in = w.shape[1]
        w_work = w[:, lo:hi].copy()
        errs = np.empty_like(w_work)
        for p in range(lo, hi):
            j = p - lo
            err = (w_work[:, j] - q[:, p]) / u_factor[p, p]
            errs[:, j] = err
            if j + 1 < w_work.shape[1]:
                w_work[:, j + 1 :] -= np.outer(err, u_factor[p, p + 1 : hi])
        if hi < d_in:
            w[:, hi:] -= errs @ u_factor[lo:hi, hi:]
