"""Tests for the Hessian / GPTQ machinery."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.quant import (
    cholesky_inverse_factor,
    inverse_hessian,
    layer_hessian,
    pruning_saliency,
)


@pytest.fixture(scope="module")
def calib_small():
    rng = np.random.default_rng(0)
    return rng.normal(0, 1, (64, 16))


class TestLayerHessian:
    def test_formula(self, calib_small):
        h = layer_hessian(calib_small, damp_ratio=0.0)
        # damp_ratio=0 still adds nothing; check 2 X^T X
        assert np.allclose(h, 2 * calib_small.T @ calib_small)

    def test_damping_increases_diagonal(self, calib_small):
        h0 = layer_hessian(calib_small, 0.0)
        h1 = layer_hessian(calib_small, 0.1)
        assert np.all(np.diag(h1) > np.diag(h0))
        assert np.allclose(h1 - np.diag(np.diag(h1)), h0 - np.diag(np.diag(h0)))

    def test_symmetric(self, calib_small):
        h = layer_hessian(calib_small)
        assert np.allclose(h, h.T)

    def test_positive_definite_after_damping(self):
        # Rank-deficient calibration still yields PD Hessian.
        x = np.ones((4, 16))
        h = layer_hessian(x, 0.01)
        assert np.all(np.linalg.eigvalsh(h) > 0)

    def test_rejects_non_2d(self):
        with pytest.raises(ValueError):
            layer_hessian(np.zeros(5))


class TestInverse:
    def test_inverse_property(self, calib_small):
        h = layer_hessian(calib_small)
        hinv = inverse_hessian(h)
        assert np.allclose(h @ hinv, np.eye(h.shape[0]), atol=1e-8)

    def test_cholesky_factor_reconstructs_inverse(self, calib_small):
        h = layer_hessian(calib_small)
        u = cholesky_inverse_factor(h)
        assert np.allclose(u.T @ u, inverse_hessian(h), atol=1e-8)

    def test_cholesky_upper_triangular(self, calib_small):
        u = cholesky_inverse_factor(layer_hessian(calib_small))
        assert np.allclose(u, np.triu(u))

    def test_diagonal_positive(self, calib_small):
        u = cholesky_inverse_factor(layer_hessian(calib_small))
        assert np.all(np.diag(u) > 0)


class TestSaliency:
    def test_zero_weight_zero_saliency(self):
        s = pruning_saliency(np.array([0.0, 1.0]), np.array([1.0, 1.0]))
        assert s[0] == 0.0 and s[1] == 1.0

    def test_scales_with_square(self):
        s = pruning_saliency(np.array([1.0, 2.0]), np.array([1.0, 1.0]))
        assert s[1] == pytest.approx(4 * s[0])

    def test_large_hinv_diag_lowers_saliency(self):
        """A direction the loss barely constrains (large [H^-1]_pp) is
        cheap to prune."""
        s = pruning_saliency(np.array([1.0, 1.0]), np.array([1.0, 10.0]))
        assert s[1] < s[0]

    @given(st.integers(4, 24))
    @settings(max_examples=20, deadline=None)
    def test_obs_update_reduces_output_error(self, d):
        """Quantizing one coordinate + OBS update never increases the
        layer-output error versus no update."""
        rng = np.random.default_rng(d)
        x = rng.normal(0, 1, (64, d))
        h = layer_hessian(x, 0.01)
        u = cholesky_inverse_factor(h)
        w = rng.normal(0, 1, d)
        q0 = np.round(w[0] * 2) / 2  # quantize coord 0 coarsely
        # no compensation
        w_plain = w.copy()
        w_plain[0] = q0
        # OBS compensation on remaining coords
        err = (w[0] - q0) / u[0, 0]
        w_obs = w.copy()
        w_obs[0] = q0
        w_obs[1:] -= err * u[0, 1:]
        e_plain = np.linalg.norm(x @ (w - w_plain))
        e_obs = np.linalg.norm(x @ (w - w_obs))
        assert e_obs <= e_plain + 1e-9
